"""The CI benchmark regression gate (tools/bench_gate.py).

Exercises the gate as a library (its ``main`` with explicit argv), covering
the three verdicts — clean, warn-only at smoke scale, enforced failure —
plus baseline refresh and the determinism-hash rules.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_gate", Path(__file__).resolve().parents[1] / "tools" / "bench_gate.py")
bench_gate = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("bench_gate", bench_gate)
_SPEC.loader.exec_module(bench_gate)


def _artifact(wall=1.0, throughput=100.0, run_hash="abc", replay_hash="abc",
              scale=0.1):
    return {
        "benchmark": "demo",
        "scale": scale,
        "engine_env": "sync",
        "unix_time": 0.0,
        "results": {
            "wall_seconds": wall,
            "events_per_second": throughput,
            "determinism": {"hash": run_hash, "replay_hash": replay_hash},
        },
    }


def _write(directory: Path, payload, name="BENCH_demo.json"):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / name).write_text(json.dumps(payload))


@pytest.fixture
def dirs(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.1")
    return tmp_path / "current", tmp_path / "baselines"


def _gate(current, baselines, *extra):
    return bench_gate.main(["--current-dir", str(current),
                            "--baseline-dir", str(baselines), *extra])


class TestBenchGate:
    def test_clean_pass(self, dirs):
        current, baselines = dirs
        _write(current, _artifact())
        _write(baselines, _artifact())
        assert _gate(current, baselines) == 0
        assert _gate(current, baselines, "--strict") == 0

    def test_no_artifacts_is_usage_error(self, dirs):
        current, baselines = dirs
        current.mkdir(parents=True)
        assert _gate(current, baselines) == 2

    def test_slowdown_warns_at_smoke_scale_fails_strict(self, dirs):
        current, baselines = dirs
        _write(baselines, _artifact(wall=1.0))
        _write(current, _artifact(wall=1.5))
        assert _gate(current, baselines) == 0            # warn-only
        assert _gate(current, baselines, "--strict") == 1

    def test_slowdown_enforced_at_half_scale(self, dirs, monkeypatch):
        current, baselines = dirs
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        _write(baselines, _artifact(wall=1.0, scale=0.5))
        _write(current, _artifact(wall=2.0, scale=0.5))
        assert _gate(current, baselines) == 1

    def test_slowdown_within_threshold_passes(self, dirs):
        current, baselines = dirs
        _write(baselines, _artifact(wall=1.0))
        _write(current, _artifact(wall=1.2))
        assert _gate(current, baselines, "--strict") == 0

    def test_throughput_drop_fails(self, dirs):
        current, baselines = dirs
        _write(baselines, _artifact(throughput=100.0))
        _write(current, _artifact(throughput=60.0))
        assert _gate(current, baselines, "--strict") == 1

    def test_determinism_mismatch_fails_even_at_smoke_scale(self, dirs):
        current, baselines = dirs
        _write(baselines, _artifact())
        _write(current, _artifact(run_hash="abc", replay_hash="xyz"))
        # Hash pairs are machine-independent: enforced without --strict.
        assert _gate(current, baselines) == 1
        assert _gate(current, baselines, "--strict") == 1

    def test_determinism_checked_even_without_baseline(self, dirs):
        current, baselines = dirs
        baselines.mkdir(parents=True)
        _write(current, _artifact(run_hash="abc", replay_hash="xyz"))
        assert _gate(current, baselines) == 1

    def test_missing_baseline_is_note_only(self, dirs):
        current, baselines = dirs
        baselines.mkdir(parents=True)
        _write(current, _artifact())
        assert _gate(current, baselines, "--strict") == 0

    def test_scale_mismatch_skips_timing(self, dirs):
        current, baselines = dirs
        _write(baselines, _artifact(wall=1.0, scale=1.0))
        _write(current, _artifact(wall=100.0, scale=0.1))
        assert _gate(current, baselines, "--strict") == 0

    def test_tiny_baselines_skipped_as_noise(self, dirs):
        current, baselines = dirs
        _write(baselines, _artifact(wall=1e-4))
        _write(current, _artifact(wall=5e-4))  # 5x, but below the noise floor
        assert _gate(current, baselines, "--strict") == 0

    def test_update_refreshes_baselines(self, dirs):
        current, baselines = dirs
        _write(current, _artifact(wall=2.0))
        assert _gate(current, baselines, "--update") == 0
        recorded = json.loads((baselines / "BENCH_demo.json").read_text())
        assert recorded["results"]["wall_seconds"] == 2.0
        # After the refresh the same artifact gates clean under --strict.
        assert _gate(current, baselines, "--strict") == 0

    def test_walk_helpers(self):
        payload = {"a": {"b_seconds": 1.5, "list": [{"c": 2}]},
                   "determinism": {"hash": "x", "replay_hash": "y"}}
        metrics = dict(bench_gate.walk_numeric(payload))
        assert metrics["a.b_seconds"] == 1.5
        assert metrics["a.list[0].c"] == 2.0
        pairs = list(bench_gate.walk_hash_pairs(payload))
        assert pairs == [("determinism", "x", "y")]

    def test_committed_baselines_gate_clean_against_themselves(self):
        """The baselines shipped in-repo must self-compare clean."""
        baselines = Path(__file__).resolve().parents[1] / "benchmarks" / "baselines"
        assert baselines.is_dir(), "benchmarks/baselines must be committed"
        assert bench_gate.main(["--current-dir", str(baselines),
                                "--baseline-dir", str(baselines),
                                "--strict"]) == 0


class TestRequiredHashPairs:
    """The contract pairs a benchmark may not silently stop emitting."""

    def test_registry_covers_fig1_serve_and_precision(self):
        assert bench_gate.REQUIRED_HASH_PAIRS["BENCH_serve_latency.json"] \
            == ("serve_determinism",)
        assert set(bench_gate.REQUIRED_HASH_PAIRS[
            "BENCH_fig1_breakdown_wikipedia.json"]) \
            == {"backend_equivalence", "prep_backend_equivalence",
                "overlap_equivalence"}
        assert set(bench_gate.REQUIRED_HASH_PAIRS["BENCH_precision.json"]) \
            == {"precision_determinism", "fp32_equivalence"}
        assert set(bench_gate.REQUIRED_HASH_PAIRS["BENCH_shard_scaling.json"]) \
            == {"determinism", "comms_equivalence"}

    def _fig1_artifact(self, overlap_replay="pool", fused_prep=1.0,
                       reference_prep=1.0):
        return {
            "benchmark": "fig1_breakdown_wikipedia", "scale": 0.1,
            "engine_env": "sync", "unix_time": 0.0,
            "results": {
                "backend_equivalence": {"hash": "a", "replay_hash": "a"},
                "prep_backend_equivalence": {"hash": "b", "replay_hash": "b"},
                "overlap_equivalence": {"hash": "pool",
                                        "replay_hash": overlap_replay},
                "backends": {
                    "reference": {"prep_seconds": reference_prep},
                    "fused": {"prep_seconds": fused_prep},
                },
            },
        }

    def test_fig1_pairs_present_and_equal_pass(self, dirs):
        current, baselines = dirs
        baselines.mkdir(parents=True)
        _write(current, self._fig1_artifact(),
               name="BENCH_fig1_breakdown_wikipedia.json")
        assert _gate(current, baselines) == 0

    def test_overlap_replay_mismatch_fails_at_every_scale(self, dirs):
        """A pooled run whose trajectory diverges from the inline pool-0
        anchor is a keyed-draw protocol break — enforced without --strict."""
        current, baselines = dirs
        baselines.mkdir(parents=True)
        _write(current, self._fig1_artifact(overlap_replay="doctored"),
               name="BENCH_fig1_breakdown_wikipedia.json")
        assert _gate(current, baselines) == 1          # even without --strict

    def test_overlap_pair_missing_fails_hard(self, dirs):
        current, baselines = dirs
        baselines.mkdir(parents=True)
        artifact = self._fig1_artifact()
        del artifact["results"]["overlap_equivalence"]
        _write(current, artifact, name="BENCH_fig1_breakdown_wikipedia.json")
        assert _gate(current, baselines) == 1


class TestRatioContracts:
    """Intra-artifact timing contracts that need no baseline."""

    _fig1 = TestRequiredHashPairs._fig1_artifact

    def test_registry_covers_fused_prep_ratio(self):
        assert any(name == "BENCH_fig1_breakdown_wikipedia.json"
                   and num == "backends.fused.prep_seconds"
                   and den == "backends.reference.prep_seconds"
                   for name, num, den, _ in bench_gate.RATIO_CONTRACTS)

    def test_fused_prep_regression_warns_at_smoke_fails_strict(self, dirs):
        current, baselines = dirs
        baselines.mkdir(parents=True)
        _write(current, self._fig1(fused_prep=2.0, reference_prep=1.0),
               name="BENCH_fig1_breakdown_wikipedia.json")
        assert _gate(current, baselines) == 0          # warn-only at smoke
        assert _gate(current, baselines, "--strict") == 1

    def test_fused_prep_within_ratio_passes(self, dirs):
        current, baselines = dirs
        baselines.mkdir(parents=True)
        _write(current, self._fig1(fused_prep=1.05, reference_prep=1.0),
               name="BENCH_fig1_breakdown_wikipedia.json")
        assert _gate(current, baselines, "--strict") == 0

    def test_tiny_denominator_skipped_as_noise(self, dirs):
        current, baselines = dirs
        baselines.mkdir(parents=True)
        _write(current, self._fig1(fused_prep=5e-4, reference_prep=1e-4),
               name="BENCH_fig1_breakdown_wikipedia.json")
        assert _gate(current, baselines, "--strict") == 0

    def _serve_artifact(self, run_hash="abc", replay_hash="abc"):
        return {
            "benchmark": "serve_latency", "scale": 0.1, "engine_env": "sync",
            "unix_time": 0.0,
            "results": {
                "serve_determinism": {"hash": run_hash,
                                      "replay_hash": replay_hash},
            },
        }

    def test_serve_pair_present_and_equal_passes(self, dirs):
        current, baselines = dirs
        baselines.mkdir(parents=True)
        _write(current, self._serve_artifact(),
               name="BENCH_serve_latency.json")
        assert _gate(current, baselines) == 0

    def test_serve_replay_mismatch_fails_at_every_scale(self, dirs):
        current, baselines = dirs
        baselines.mkdir(parents=True)
        _write(current, self._serve_artifact(replay_hash="doctored"),
               name="BENCH_serve_latency.json")
        assert _gate(current, baselines) == 1          # even without --strict

    def test_serve_pair_missing_fails_hard(self, dirs):
        current, baselines = dirs
        baselines.mkdir(parents=True)
        artifact = self._serve_artifact()
        del artifact["results"]["serve_determinism"]
        _write(current, artifact, name="BENCH_serve_latency.json")
        assert _gate(current, baselines) == 1

    def _precision_artifact(self, run_hash="abc", replay_hash="abc"):
        return {
            "benchmark": "precision", "scale": 0.1, "engine_env": "sync",
            "unix_time": 0.0,
            "results": {
                "fp32_equivalence": {"hash": "eq", "replay_hash": "eq"},
                "precision_determinism": {"hash": run_hash,
                                          "replay_hash": replay_hash},
            },
        }

    def test_precision_pairs_present_and_equal_pass(self, dirs):
        current, baselines = dirs
        baselines.mkdir(parents=True)
        _write(current, self._precision_artifact(),
               name="BENCH_precision.json")
        assert _gate(current, baselines) == 0

    def test_precision_replay_mismatch_fails_at_every_scale(self, dirs):
        current, baselines = dirs
        baselines.mkdir(parents=True)
        _write(current, self._precision_artifact(replay_hash="doctored"),
               name="BENCH_precision.json")
        assert _gate(current, baselines) == 1          # even without --strict

    def test_precision_pair_missing_fails_hard(self, dirs):
        current, baselines = dirs
        baselines.mkdir(parents=True)
        artifact = self._precision_artifact()
        del artifact["results"]["precision_determinism"]
        _write(current, artifact, name="BENCH_precision.json")
        assert _gate(current, baselines) == 1

    def _shard_artifact(self, comms_replay="traj"):
        return {
            "benchmark": "shard_scaling", "scale": 0.1, "engine_env": "sync",
            "unix_time": 0.0,
            "results": {
                "determinism": {"hash": "det", "replay_hash": "det"},
                "comms_equivalence": {"hash": "traj",
                                      "replay_hash": comms_replay},
            },
        }

    def test_shard_pairs_present_and_equal_pass(self, dirs):
        current, baselines = dirs
        baselines.mkdir(parents=True)
        _write(current, self._shard_artifact(),
               name="BENCH_shard_scaling.json")
        assert _gate(current, baselines) == 0

    def test_comms_replay_mismatch_fails_at_every_scale(self, dirs):
        """A shm trajectory diverging from the pickle anchor breaks the
        transports' bitwise contract — enforced without --strict."""
        current, baselines = dirs
        baselines.mkdir(parents=True)
        _write(current, self._shard_artifact(comms_replay="doctored"),
               name="BENCH_shard_scaling.json")
        assert _gate(current, baselines) == 1          # even without --strict

    def test_comms_pair_missing_fails_hard(self, dirs):
        current, baselines = dirs
        baselines.mkdir(parents=True)
        artifact = self._shard_artifact()
        del artifact["results"]["comms_equivalence"]
        _write(current, artifact, name="BENCH_shard_scaling.json")
        assert _gate(current, baselines) == 1
