"""Tests for the serving layer: NodeEmbeddingCache and ServeEngine.

Covers the edge cases the serving contracts hinge on — empty flushes,
out-of-universe queries, queries for nodes with no history at time ``t``,
staleness-bound expiry inside one micro-batch, queue-full shedding under both
admission policies, deadline expiry on the injected clock — and the
deterministic replay contract: bitwise-identical scores across runs for every
prep-backend × array-backend cell.
"""

import numpy as np
import pytest

from repro.core import TaserConfig, TaserTrainer
from repro.serve import (LinkQuery, NodeEmbeddingCache, ServeEngine,
                         VirtualClock, scores_hash)


@pytest.fixture(scope="module")
def trained(small_graph):
    config = TaserConfig(hidden_dim=16, time_dim=8, num_neighbors=3,
                         num_candidates=6, batch_size=150, epochs=1,
                         max_batches_per_epoch=4, adaptive_minibatch=False,
                         adaptive_neighbor=False, seed=3)
    trainer = TaserTrainer(small_graph, config)
    trainer.train_epoch()
    return trainer


@pytest.fixture(scope="module")
def queries(small_graph):
    rng = np.random.default_rng(17)
    n = small_graph.num_nodes
    t_hi = float(small_graph.ts.max())
    return [LinkQuery(int(rng.integers(0, n)), int(rng.integers(0, n)),
                      t_hi * (0.5 + 0.5 * float(rng.random())))
            for _ in range(30)]


def make_engine(trained, **kwargs):
    kwargs.setdefault("max_batch", 8)
    kwargs.setdefault("clock", VirtualClock())
    return ServeEngine.from_trainer(trained, **kwargs)


class TestNodeEmbeddingCache:
    def test_validation(self):
        with pytest.raises(ValueError):
            NodeEmbeddingCache(-1, 4)
        with pytest.raises(ValueError):
            NodeEmbeddingCache(10, -1)
        with pytest.raises(ValueError):
            NodeEmbeddingCache(10, 4, staleness_events=-1)
        with pytest.raises(ValueError):
            NodeEmbeddingCache(10, 4, staleness_time=-0.5)

    def test_default_serves_exact_repeats_only(self):
        cache = NodeEmbeddingCache(10, 4)
        rows = np.arange(6, dtype=np.float64).reshape(2, 3)
        cache.insert(np.array([1, 2]), rows, np.array([5.0, 5.0]), now_event=0)
        hits, got = cache.lookup(np.array([1, 2, 1]),
                                 np.array([5.0, 6.0, 4.0]), now_event=0)
        # Only the identical (node, t) pair hits under staleness_time=0.0.
        assert hits.tolist() == [True, False, False]
        assert np.array_equal(got[0], rows[0])

    def test_time_staleness_bound(self):
        cache = NodeEmbeddingCache(10, 4, staleness_time=1.5)
        cache.insert(np.array([3]), np.ones((1, 2)), np.array([10.0]), 0)
        hits, _ = cache.lookup(np.array([3, 3, 3]),
                               np.array([11.0, 11.5, 12.0]), 0)
        assert hits.tolist() == [True, True, False]

    def test_event_staleness_bound(self):
        cache = NodeEmbeddingCache(10, 4, staleness_events=5,
                                   staleness_time=None)
        cache.insert(np.array([3]), np.ones((1, 2)), np.array([10.0]),
                     now_event=100)
        assert cache.lookup(np.array([3]), np.array([99.0]), 105)[0].all()
        assert not cache.lookup(np.array([3]), np.array([99.0]), 106)[0].any()

    def test_eviction_prefers_low_frequency(self):
        cache = NodeEmbeddingCache(10, 2, staleness_time=None)
        cache.insert(np.array([1, 2]), np.zeros((2, 2)), np.zeros(2), 0)
        # Node 2 becomes the hot entry; node 1 must be the eviction victim.
        cache.lookup(np.array([2, 2, 2]), np.zeros(3), 0)
        cache.insert(np.array([5]), np.ones((1, 2)), np.zeros(1), 0)
        assert cache.cached_nodes().tolist() == [2, 5]
        assert cache.eviction_count == 1

    def test_insert_last_write_wins_on_duplicates(self):
        cache = NodeEmbeddingCache(10, 4, staleness_time=None)
        rows = np.array([[1.0, 1.0], [2.0, 2.0]])
        cache.insert(np.array([7, 7]), rows, np.array([1.0, 2.0]), 0)
        _, got = cache.lookup(np.array([7]), np.array([2.0]), 0)
        assert np.array_equal(got[0], rows[1])
        assert cache.num_cached == 1

    def test_grow_extends_universe_and_rejects_shrink(self):
        cache = NodeEmbeddingCache(5, 3)
        cache.insert(np.array([4]), np.ones((1, 2)), np.zeros(1), 0)
        with pytest.raises(ValueError):
            cache.lookup(np.array([6]), np.zeros(1), 0)
        cache.grow(8)
        assert not cache.lookup(np.array([6]), np.zeros(1), 0)[0].any()
        assert cache.num_cached == 1  # grown nodes start uncached
        with pytest.raises(ValueError):
            cache.grow(4)

    def test_hit_accounting_and_end_epoch(self):
        cache = NodeEmbeddingCache(10, 4, staleness_time=None)
        cache.insert(np.array([1]), np.ones((1, 2)), np.zeros(1), 0)
        cache.lookup(np.array([1, 1, 2, 3]), np.zeros(4), 0)
        assert cache.current_hit_rate == pytest.approx(0.5)
        cache.end_epoch()
        assert cache.hit_rate_history == [pytest.approx(0.5)]
        assert cache.current_hit_rate == 0.0

    def test_zero_capacity_disables_caching(self):
        cache = NodeEmbeddingCache(10, 0)
        cache.insert(np.array([1]), np.ones((1, 2)), np.zeros(1), 0)
        hits, rows = cache.lookup(np.array([1]), np.zeros(1), 0)
        assert not hits.any() and rows is None
        assert cache.num_cached == 0


class TestServeEngineEdgeCases:
    def test_empty_flush(self, trained):
        engine = make_engine(trained)
        assert engine.flush() == []
        assert engine.stats()["forward_batches"] == 0

    def test_invalid_nodes_rejected_not_crashed(self, trained):
        engine = make_engine(trained)
        results = engine.serve([LinkQuery(-1, 3, 1.0),
                                LinkQuery(2, 10 ** 9, 1.0),
                                LinkQuery(2, 3, 1.0)])
        assert [r.status for r in results] == ["invalid", "invalid", "ok"]

    def test_unseen_node_at_time_t(self, trained):
        # At t = first timestamp no node has any history yet: the temporal
        # neighborhood is empty and the score must still be a probability.
        t0 = float(trained.graph.ts.min())
        engine = make_engine(trained)
        results = engine.serve([LinkQuery(0, 1, t0)])
        assert results[0].status == "ok"
        assert 0.0 <= results[0].score <= 1.0

    def test_queue_full_shed_policy(self, trained):
        engine = make_engine(trained, queue_depth=2, admission="shed")
        q = LinkQuery(1, 2, 100.0)
        outcomes = [engine.submit(q) for _ in range(4)]
        assert outcomes[0] is None and outcomes[1] is None
        assert outcomes[2].status == "shed" and outcomes[3].status == "shed"
        done = engine.flush()
        assert [r.status for r in done] == ["ok", "ok"]
        assert engine.stats()["shed"] == 2

    def test_queue_full_wait_policy_drains(self, trained):
        engine = make_engine(trained, queue_depth=2, admission="wait")
        q = LinkQuery(1, 2, 100.0)
        for _ in range(5):
            assert engine.submit(q) is None  # backpressure, never rejected
        results = engine.flush()
        assert len(results) == 5
        assert [r.seq for r in results] == sorted(r.seq for r in results)
        assert engine.stats()["shed"] == 0

    def test_deadline_expiry_on_injected_clock(self, trained):
        engine = make_engine(trained, clock=VirtualClock(tick=1.0))
        engine.submit(LinkQuery(1, 2, 100.0, deadline=0.5))
        engine.submit(LinkQuery(3, 4, 100.0, deadline=100.0))
        engine.submit(LinkQuery(5, 6, 100.0))  # no deadline: never expires
        results = engine.flush()
        assert [r.status for r in results] == ["expired", "ok", "ok"]
        assert engine.stats()["expired"] == 1

    def test_staleness_expiry_mid_batch(self, trained):
        # One micro-batch holds the same node at two query times: the nearby
        # one is served from cache, the distant one exceeds the staleness
        # bound and is recomputed — within the same flush.
        engine = make_engine(trained, staleness_time=1.0,
                             staleness_events=None)
        warm = engine.serve([LinkQuery(1, 2, 100.0)])
        assert warm[0].cache_hits == 0
        engine.submit(LinkQuery(1, 2, 100.5))   # inside the bound: hits
        engine.submit(LinkQuery(1, 2, 500.0))   # outside: recomputed
        near, far = engine.flush()
        assert near.cache_hits == 2 and far.cache_hits == 0
        assert near.batch_size == 2 and far.batch_size == 2

    def test_event_staleness_invalidated_by_ingest(self, trained):
        engine = make_engine(trained, staleness_events=3,
                             staleness_time=None)
        q = LinkQuery(1, 2, float(trained.graph.ts.max()))
        engine.serve([q])
        engine.serve([q])
        assert engine.stats()["embeddings_reused"] == 2
        last = float(engine.graph.ts[-1])
        engine.ingest(np.array([1, 2, 3, 4]), np.array([2, 3, 4, 5]),
                      np.full(4, last + 1.0),
                      np.zeros((4, engine.graph.edge_dim), dtype=np.float32))
        engine.serve([q])  # 4 events ingested > bound of 3: must recompute
        assert engine.stats()["embeddings_reused"] == 2

    def test_ingest_copies_graph_and_refreshes(self, trained):
        before = trained.graph.num_edges
        engine = make_engine(trained)
        last = float(engine.graph.ts[-1])
        engine.ingest(np.array([0, 1]), np.array([1, 2]),
                      np.array([last + 1.0, last + 2.0]),
                      np.zeros((2, engine.graph.edge_dim), dtype=np.float32))
        assert engine.graph.num_edges == before + 2
        assert trained.graph.num_edges == before  # caller's graph untouched
        results = engine.serve([LinkQuery(0, 1, last + 3.0)])
        assert results[0].status == "ok"

    def test_constructor_validation(self, trained):
        with pytest.raises(ValueError, match="max_batch"):
            make_engine(trained, max_batch=0)
        with pytest.raises(ValueError, match="queue_depth"):
            make_engine(trained, queue_depth=0)
        with pytest.raises(ValueError, match="admission"):
            make_engine(trained, admission="drop")
        with pytest.raises(ValueError, match="tick"):
            VirtualClock(tick=0.0)

    def test_results_in_submission_order(self, trained, queries):
        engine = make_engine(trained, max_batch=4)
        results = engine.serve(queries)
        assert len(results) == len(queries)
        assert [r.seq for r in results] == list(range(len(queries)))
        assert [r.query for r in results] == queries

    def test_stats_payload(self, trained, queries):
        engine = make_engine(trained, max_batch=4)
        engine.serve(queries)
        stats = engine.stats()
        assert stats["served"] == len(queries)
        assert stats["forward_batches"] >= len(queries) // 4
        assert 0.0 < stats["batch_occupancy"] <= 1.0
        assert 0.0 <= stats["embedding_cache_hit_rate"] <= 1.0
        assert stats["embeddings_computed"] + stats["embeddings_reused"] \
            == 2 * len(queries)


class TestServeDeterminism:
    @pytest.mark.parametrize("prep_backend", ["reference", "fused"])
    @pytest.mark.parametrize("array_backend", ["reference", "fused"])
    def test_replay_bitwise_per_cell(self, trained, queries, prep_backend,
                                     array_backend):
        def run():
            engine = make_engine(trained, prep_backend=prep_backend,
                                 array_backend=array_backend,
                                 staleness_time=None)
            return scores_hash(engine.serve(queries))

        assert run() == run(), (prep_backend, array_backend)

    def test_all_four_cells_agree(self, trained, queries):
        hashes = {
            (pb, ab): scores_hash(
                make_engine(trained, prep_backend=pb, array_backend=ab,
                            staleness_time=None).serve(queries))
            for pb in ("reference", "fused")
            for ab in ("reference", "fused")
        }
        assert len(set(hashes.values())) == 1, hashes
