"""Tests for the simulated memory hierarchy: caches, feature store, cost model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device import (TransferCostModel, DynamicFeatureCache, OracleCache,
                          StaticRandomCache, StaticDegreeCache, FeatureStore)


class TestCostModel:
    def test_monotone_in_bytes(self):
        cm = TransferCostModel()
        assert cm.pcie_time(2e6) > cm.pcie_time(1e6) > 0
        assert cm.vram_time(2e6) > cm.vram_time(1e6) > 0

    def test_vram_faster_than_pcie(self):
        cm = TransferCostModel()
        assert cm.vram_time(1e7) < cm.pcie_time(1e7)

    def test_negative_bytes_rejected(self):
        cm = TransferCostModel()
        with pytest.raises(ValueError):
            cm.pcie_time(-1)
        with pytest.raises(ValueError):
            cm.vram_time(-1)


class TestDynamicCache:
    def make_stream(self, num_edges=500, hot=50, length=4000, seed=0):
        """Skewed access stream: `hot` edges receive ~80% of accesses."""
        rng = np.random.default_rng(seed)
        hot_ids = rng.choice(num_edges, hot, replace=False)
        accesses = np.where(rng.random(length) < 0.8,
                            rng.choice(hot_ids, length),
                            rng.integers(0, num_edges, length))
        return accesses

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DynamicFeatureCache(10, 20)

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            DynamicFeatureCache(10, 5, epsilon=2.0)

    def test_hit_rate_improves_after_first_epoch(self):
        """Algorithm 3: the random initial cache is replaced by the frequent set."""
        cache = DynamicFeatureCache(500, 100, epsilon=0.9, seed=0)
        stream = self.make_stream()
        for _ in range(3):
            for start in range(0, stream.size, 200):
                cache.lookup(stream[start:start + 200])
            cache.end_epoch()
        rates = cache.hit_rate_history
        assert rates[-1] > rates[0] + 0.2
        assert cache.replacement_count >= 1

    def test_no_replacement_when_overlap_high(self):
        """Once the cache holds the hot set, further epochs do not churn it."""
        cache = DynamicFeatureCache(500, 100, epsilon=0.5, seed=0)
        stream = self.make_stream()
        for _ in range(4):
            cache.lookup(stream)
            cache.end_epoch()
        replacements_mid = cache.replacement_count
        for _ in range(3):
            cache.lookup(stream)
            cache.end_epoch()
        assert cache.replacement_count == replacements_mid

    def test_zero_capacity_never_hits(self):
        cache = DynamicFeatureCache(100, 0)
        hits = cache.lookup(np.arange(50))
        assert not hits.any()
        cache.end_epoch()
        assert cache.hit_rate_history == [0.0]

    def test_cached_set_size_never_exceeds_capacity(self):
        cache = DynamicFeatureCache(300, 40, seed=1)
        stream = self.make_stream(num_edges=300)
        for _ in range(3):
            cache.lookup(stream)
            cache.end_epoch()
            assert cache.cached.sum() <= 40

    def test_oracle_upper_bounds_dynamic(self):
        """The clairvoyant cache must achieve at least the dynamic cache's hit rate."""
        stream = self.make_stream(seed=3)
        dynamic = DynamicFeatureCache(500, 80, seed=3)
        oracle = OracleCache(500, 80)
        for _ in range(4):
            oracle.preload(stream)
            dynamic.lookup(stream)
            oracle.lookup(stream)
            dynamic.end_epoch()
            oracle.end_epoch()
        assert oracle.hit_rate_history[-1] >= dynamic.hit_rate_history[-1] - 1e-9

    def test_static_caches(self):
        src = np.random.default_rng(0).integers(0, 20, 200)
        dst = np.random.default_rng(1).integers(0, 20, 200)
        random_cache = StaticRandomCache(200, 50, seed=0)
        degree_cache = StaticDegreeCache(200, 50, src, dst, 20)
        assert random_cache.cached.sum() == 50
        assert degree_cache.cached.sum() == 50
        random_cache.lookup(np.arange(200))
        random_cache.end_epoch()
        # static policy: content unchanged after the epoch
        assert random_cache.cached.sum() == 50


@settings(max_examples=15, deadline=None)
@given(capacity=st.integers(0, 60), seed=st.integers(0, 20))
def test_property_dynamic_cache_hit_rate_bounded(capacity, seed):
    """Hit rate is always in [0, 1] and the cached set never exceeds capacity."""
    cache = DynamicFeatureCache(100, capacity, seed=seed)
    rng = np.random.default_rng(seed)
    for _ in range(3):
        cache.lookup(rng.integers(0, 100, 500))
        cache.end_epoch()
        assert 0.0 <= cache.hit_rate_history[-1] <= 1.0
        assert cache.cached.sum() <= capacity


class TestFeatureStore:
    def test_edge_slicing_shapes(self, small_graph):
        store = FeatureStore(small_graph)
        eids = np.arange(12).reshape(3, 4)
        feats = store.slice_edge_features(eids)
        assert feats.shape == (3, 4, small_graph.edge_dim)
        assert np.allclose(feats, small_graph.edge_feat[eids])

    def test_masked_rows_zeroed_and_not_accounted(self, small_graph):
        store = FeatureStore(small_graph)
        eids = np.arange(6).reshape(2, 3)
        mask = np.array([[True, False, True], [False, False, False]])
        feats = store.slice_edge_features(eids, mask)
        assert np.allclose(feats[0, 1], 0)
        assert np.allclose(feats[1], 0)
        assert store.stats.cache_misses == 2  # only the valid requests

    def test_no_edge_features_returns_none(self, featured_graph):
        graph = featured_graph
        node_only = graph.select_events(np.arange(graph.num_edges))
        node_only.edge_feat = None
        store = FeatureStore(node_only)
        assert store.slice_edge_features(np.zeros((2, 2), dtype=int)) is None

    def test_node_slicing_uses_vram(self, featured_graph):
        store = FeatureStore(featured_graph)
        store.slice_node_features(np.arange(10))
        assert store.stats.bytes_from_vram > 0
        assert store.stats.bytes_from_ram == 0

    def test_cache_reduces_pcie_bytes_and_time(self, small_graph):
        hot = np.arange(100)
        no_cache = FeatureStore(small_graph)
        cached = FeatureStore(small_graph,
                              edge_cache=DynamicFeatureCache(small_graph.num_edges,
                                                             200, seed=0))
        for _ in range(3):
            no_cache.slice_edge_features(hot)
            cached.slice_edge_features(hot)
            no_cache.end_epoch()
            cached.end_epoch()
        # warm epochs: the cached store should move fewer bytes over PCIe
        no_cache.reset_stats()
        cached.reset_stats()
        no_cache.slice_edge_features(hot)
        cached.slice_edge_features(hot)
        assert cached.stats.bytes_from_ram < no_cache.stats.bytes_from_ram
        assert cached.stats.simulated_seconds < no_cache.stats.simulated_seconds

    def test_stats_reset(self, small_graph):
        store = FeatureStore(small_graph)
        store.slice_edge_features(np.arange(5))
        store.reset_stats()
        assert store.stats.requests == 0
        assert store.stats.simulated_seconds == 0.0


class TestCacheGrowProperties:
    """Hypothesis property tests: grow()/lookup()/lookup_unique() interplay.

    ``grow`` used to be exercised only incidentally through the streaming
    loop; these properties drive it directly, interleaved with lookups and
    epoch boundaries, and assert the three cache contracts:

    * **hit-rate accounting** matches a naive per-epoch hit/request model at
      every epoch boundary;
    * **eviction order is preserved** across grows — growing the universe
      never evicts, reorders or adopts entries mid-epoch, and the
      post-``end_epoch`` replacement decision is identical whether the
      accesses arrived deduplicated or not;
    * ``lookup`` and ``lookup_unique`` are **equivalent**: same hit masks,
      same epoch counters, same frequencies, same replacement decisions.
    """

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_property_interleaved_grow_lookup(self, data):
        num_edges = data.draw(st.integers(8, 24), label="num_edges")
        capacity = data.draw(st.integers(0, num_edges), label="capacity")
        cache = DynamicFeatureCache(num_edges, capacity, seed=3)
        twin = DynamicFeatureCache(num_edges, capacity, seed=3)

        freq = np.zeros(num_edges, dtype=np.int64)
        epoch_hits = epoch_requests = 0
        history = []
        for _ in range(data.draw(st.integers(2, 10), label="steps")):
            op = data.draw(st.sampled_from(["lookup", "grow", "end_epoch"]))
            if op == "lookup":
                ids = np.asarray(
                    data.draw(st.lists(st.integers(0, cache.num_edges - 1),
                                       min_size=1, max_size=30)),
                    dtype=np.int64)
                expected = cache.cached[ids].copy()
                hits = cache.lookup(ids)
                uniq, inverse, counts = np.unique(ids, return_inverse=True,
                                                  return_counts=True)
                twin_hits = twin.lookup_unique(uniq, counts)
                # lookup vs lookup_unique equivalence, per request position.
                assert np.array_equal(hits, expected)
                assert np.array_equal(hits, twin_hits[inverse])
                freq += np.bincount(ids, minlength=freq.size)
                epoch_hits += int(hits.sum())
                epoch_requests += int(ids.size)
            elif op == "grow":
                extra = data.draw(st.integers(1, 8), label="extra")
                raise_cap = data.draw(st.booleans(), label="raise_cap")
                new_edges = cache.num_edges + extra
                new_cap = min(new_edges,
                              cache.capacity + (extra if raise_cap else 0))
                before = cache.cached_ids()
                cache.grow(new_edges, capacity=new_cap)
                twin.grow(new_edges, capacity=new_cap)
                # Growing never evicts, reorders or adopts entries mid-epoch.
                assert np.array_equal(cache.cached_ids(), before)
                assert cache.num_edges == new_edges
                assert cache.frequency.shape == (new_edges,)
                freq = np.concatenate(
                    [freq, np.zeros(extra, dtype=np.int64)])
            else:
                cache.end_epoch()
                twin.end_epoch()
                rate = epoch_hits / epoch_requests if epoch_requests else 0.0
                history.append(rate)
                epoch_hits = epoch_requests = 0
                freq[:] = 0  # Algorithm 3 resets Q at every epoch boundary
                # Same replacement decision from dedup'd and plain accesses.
                assert np.array_equal(cache.cached_ids(), twin.cached_ids())
                assert cache.replacement_count == twin.replacement_count

        # Frequencies and epoch accounting match the naive model exactly.
        assert np.array_equal(cache.frequency, freq)
        assert np.array_equal(twin.frequency, freq)
        assert cache._epoch_hits == twin._epoch_hits == epoch_hits
        assert cache._epoch_requests == twin._epoch_requests == epoch_requests
        assert cache.hit_rate_history == pytest.approx(history)
        assert twin.hit_rate_history == pytest.approx(history)
        assert cache.cached.sum() <= cache.capacity

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_property_grow_rejections_leave_state_intact(self, data):
        num_edges = data.draw(st.integers(4, 16))
        capacity = data.draw(st.integers(1, num_edges))
        cache = DynamicFeatureCache(num_edges, capacity, seed=1)
        cache.lookup(np.arange(num_edges, dtype=np.int64))
        before = (cache.num_edges, cache.capacity, cache.cached.copy(),
                  cache.frequency.copy())
        # Shrinking either dimension (or capacity > universe) is rejected
        # and must leave the cache fully consistent (validate-then-mutate).
        with pytest.raises(ValueError):
            cache.grow(num_edges - 1)
        with pytest.raises(ValueError):
            cache.grow(num_edges, capacity=capacity - 1)
        with pytest.raises(ValueError):
            cache.grow(num_edges + 2, capacity=num_edges + 3)
        assert cache.num_edges == before[0]
        assert cache.capacity == before[1]
        assert np.array_equal(cache.cached, before[2])
        assert np.array_equal(cache.frequency, before[3])

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_property_oracle_grow_then_preload(self, data):
        num_edges = data.draw(st.integers(4, 16))
        capacity = data.draw(st.integers(1, num_edges))
        cache = OracleCache(num_edges, capacity)
        extra = data.draw(st.integers(1, 8))
        cache.grow(num_edges + extra)
        # Preload over the *grown* universe: the clairvoyant top-k must be
        # computable for ids beyond the original range.
        upcoming = np.asarray(
            data.draw(st.lists(st.integers(0, num_edges + extra - 1),
                               min_size=1, max_size=40)),
            dtype=np.int64)
        cache.preload(upcoming)
        cached = cache.cached_ids()
        assert cached.size == min(capacity, num_edges + extra)
        counts = np.bincount(upcoming, minlength=num_edges + extra)
        uncached = np.setdiff1d(np.arange(num_edges + extra), cached)
        if uncached.size:
            # Clairvoyance: nothing outside the cache is hotter than the
            # coldest cached id.
            assert counts[cached].min() >= counts[uncached].max()
        hits = cache.lookup(upcoming)
        assert cache.current_hit_rate == pytest.approx(
            hits.sum() / upcoming.size)
