"""Tests for the simulated memory hierarchy: caches, feature store, cost model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device import (TransferCostModel, DynamicFeatureCache, OracleCache,
                          StaticRandomCache, StaticDegreeCache, FeatureStore)


class TestCostModel:
    def test_monotone_in_bytes(self):
        cm = TransferCostModel()
        assert cm.pcie_time(2e6) > cm.pcie_time(1e6) > 0
        assert cm.vram_time(2e6) > cm.vram_time(1e6) > 0

    def test_vram_faster_than_pcie(self):
        cm = TransferCostModel()
        assert cm.vram_time(1e7) < cm.pcie_time(1e7)

    def test_negative_bytes_rejected(self):
        cm = TransferCostModel()
        with pytest.raises(ValueError):
            cm.pcie_time(-1)
        with pytest.raises(ValueError):
            cm.vram_time(-1)


class TestDynamicCache:
    def make_stream(self, num_edges=500, hot=50, length=4000, seed=0):
        """Skewed access stream: `hot` edges receive ~80% of accesses."""
        rng = np.random.default_rng(seed)
        hot_ids = rng.choice(num_edges, hot, replace=False)
        accesses = np.where(rng.random(length) < 0.8,
                            rng.choice(hot_ids, length),
                            rng.integers(0, num_edges, length))
        return accesses

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DynamicFeatureCache(10, 20)

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            DynamicFeatureCache(10, 5, epsilon=2.0)

    def test_hit_rate_improves_after_first_epoch(self):
        """Algorithm 3: the random initial cache is replaced by the frequent set."""
        cache = DynamicFeatureCache(500, 100, epsilon=0.9, seed=0)
        stream = self.make_stream()
        for _ in range(3):
            for start in range(0, stream.size, 200):
                cache.lookup(stream[start:start + 200])
            cache.end_epoch()
        rates = cache.hit_rate_history
        assert rates[-1] > rates[0] + 0.2
        assert cache.replacement_count >= 1

    def test_no_replacement_when_overlap_high(self):
        """Once the cache holds the hot set, further epochs do not churn it."""
        cache = DynamicFeatureCache(500, 100, epsilon=0.5, seed=0)
        stream = self.make_stream()
        for _ in range(4):
            cache.lookup(stream)
            cache.end_epoch()
        replacements_mid = cache.replacement_count
        for _ in range(3):
            cache.lookup(stream)
            cache.end_epoch()
        assert cache.replacement_count == replacements_mid

    def test_zero_capacity_never_hits(self):
        cache = DynamicFeatureCache(100, 0)
        hits = cache.lookup(np.arange(50))
        assert not hits.any()
        cache.end_epoch()
        assert cache.hit_rate_history == [0.0]

    def test_cached_set_size_never_exceeds_capacity(self):
        cache = DynamicFeatureCache(300, 40, seed=1)
        stream = self.make_stream(num_edges=300)
        for _ in range(3):
            cache.lookup(stream)
            cache.end_epoch()
            assert cache.cached.sum() <= 40

    def test_oracle_upper_bounds_dynamic(self):
        """The clairvoyant cache must achieve at least the dynamic cache's hit rate."""
        stream = self.make_stream(seed=3)
        dynamic = DynamicFeatureCache(500, 80, seed=3)
        oracle = OracleCache(500, 80)
        for _ in range(4):
            oracle.preload(stream)
            dynamic.lookup(stream)
            oracle.lookup(stream)
            dynamic.end_epoch()
            oracle.end_epoch()
        assert oracle.hit_rate_history[-1] >= dynamic.hit_rate_history[-1] - 1e-9

    def test_static_caches(self):
        src = np.random.default_rng(0).integers(0, 20, 200)
        dst = np.random.default_rng(1).integers(0, 20, 200)
        random_cache = StaticRandomCache(200, 50, seed=0)
        degree_cache = StaticDegreeCache(200, 50, src, dst, 20)
        assert random_cache.cached.sum() == 50
        assert degree_cache.cached.sum() == 50
        random_cache.lookup(np.arange(200))
        random_cache.end_epoch()
        # static policy: content unchanged after the epoch
        assert random_cache.cached.sum() == 50


@settings(max_examples=15, deadline=None)
@given(capacity=st.integers(0, 60), seed=st.integers(0, 20))
def test_property_dynamic_cache_hit_rate_bounded(capacity, seed):
    """Hit rate is always in [0, 1] and the cached set never exceeds capacity."""
    cache = DynamicFeatureCache(100, capacity, seed=seed)
    rng = np.random.default_rng(seed)
    for _ in range(3):
        cache.lookup(rng.integers(0, 100, 500))
        cache.end_epoch()
        assert 0.0 <= cache.hit_rate_history[-1] <= 1.0
        assert cache.cached.sum() <= capacity


class TestFeatureStore:
    def test_edge_slicing_shapes(self, small_graph):
        store = FeatureStore(small_graph)
        eids = np.arange(12).reshape(3, 4)
        feats = store.slice_edge_features(eids)
        assert feats.shape == (3, 4, small_graph.edge_dim)
        assert np.allclose(feats, small_graph.edge_feat[eids])

    def test_masked_rows_zeroed_and_not_accounted(self, small_graph):
        store = FeatureStore(small_graph)
        eids = np.arange(6).reshape(2, 3)
        mask = np.array([[True, False, True], [False, False, False]])
        feats = store.slice_edge_features(eids, mask)
        assert np.allclose(feats[0, 1], 0)
        assert np.allclose(feats[1], 0)
        assert store.stats.cache_misses == 2  # only the valid requests

    def test_no_edge_features_returns_none(self, featured_graph):
        graph = featured_graph
        node_only = graph.select_events(np.arange(graph.num_edges))
        node_only.edge_feat = None
        store = FeatureStore(node_only)
        assert store.slice_edge_features(np.zeros((2, 2), dtype=int)) is None

    def test_node_slicing_uses_vram(self, featured_graph):
        store = FeatureStore(featured_graph)
        store.slice_node_features(np.arange(10))
        assert store.stats.bytes_from_vram > 0
        assert store.stats.bytes_from_ram == 0

    def test_cache_reduces_pcie_bytes_and_time(self, small_graph):
        hot = np.arange(100)
        no_cache = FeatureStore(small_graph)
        cached = FeatureStore(small_graph,
                              edge_cache=DynamicFeatureCache(small_graph.num_edges,
                                                             200, seed=0))
        for _ in range(3):
            no_cache.slice_edge_features(hot)
            cached.slice_edge_features(hot)
            no_cache.end_epoch()
            cached.end_epoch()
        # warm epochs: the cached store should move fewer bytes over PCIe
        no_cache.reset_stats()
        cached.reset_stats()
        no_cache.slice_edge_features(hot)
        cached.slice_edge_features(hot)
        assert cached.stats.bytes_from_ram < no_cache.stats.bytes_from_ram
        assert cached.stats.simulated_seconds < no_cache.stats.simulated_seconds

    def test_stats_reset(self, small_graph):
        store = FeatureStore(small_graph)
        store.slice_edge_features(np.arange(5))
        store.reset_stats()
        assert store.stats.requests == 0
        assert store.stats.simulated_seconds == 0.0
