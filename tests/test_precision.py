"""Precision tiers (repro.device.precision) and the compressed caches.

Covers the codec round-trip contracts (hypothesis property tests), the
registry resolution order, :class:`PrecisionPolicy` validation, the feature
store's quantized side tables and byte accounting, and the tier-demotion
behaviour of :class:`TieredFeatureCache` / :class:`TieredNodeEmbeddingCache`.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.device import (DynamicFeatureCache, FeatureStore,
                          TieredFeatureCache, TransferCostModel)
from repro.device import precision as precision_mod
from repro.device.precision import (Fp16Codec, Fp32Codec, Int8Codec,
                                    PrecisionPolicy, available_precisions,
                                    make_precision_codec, register_precision,
                                    resolve_precision_name, roundtrip_rows)
from repro.serve.cache import NodeEmbeddingCache, TieredNodeEmbeddingCache

finite_floats = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False,
                          allow_infinity=False)


def feature_matrix(max_rows=8, max_cols=5):
    return st.tuples(st.integers(1, max_rows), st.integers(1, max_cols)).flatmap(
        lambda shape: arrays(np.float64, shape, elements=finite_floats))


class TestCodecs:
    @settings(max_examples=50, deadline=None)
    @given(feature_matrix())
    def test_int8_roundtrip_error_within_half_scale(self, features):
        codec = Int8Codec().fit(features)
        decoded = codec.decode(codec.encode(features))
        # Affine quantization: |x - deq(q(x))| <= scale/2 per column for
        # values inside the fitted range (plus float rounding headroom).
        bound = codec.scale / 2 + 1e-9
        assert np.all(np.abs(decoded - features) <= bound)

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
           st.integers(1, 8), st.integers(1, 4))
    def test_int8_constant_columns_roundtrip_exactly(self, value, rows, cols):
        features = np.full((rows, cols), value, dtype=np.float64)
        codec = Int8Codec().fit(features)
        np.testing.assert_array_equal(codec.decode(codec.encode(features)),
                                      features)

    def test_int8_zero_columns_roundtrip_exactly(self):
        features = np.zeros((6, 3))
        codec = Int8Codec().fit(features)
        assert np.all(codec.scale == 1.0)
        np.testing.assert_array_equal(codec.decode(codec.encode(features)),
                                      features)

    @settings(max_examples=25, deadline=None)
    @given(feature_matrix())
    def test_int8_frozen_params_clip_out_of_range_rows(self, features):
        codec = Int8Codec().fit(features)
        lo, scale = codec.lo.copy(), codec.scale.copy()
        hi = lo + scale * 255.0
        beyond = features + 1000.0       # far outside the fitted range
        decoded = codec.decode(codec.encode(beyond))
        # Fit state is frozen; later rows clip to the fitted boundary.
        np.testing.assert_array_equal(codec.lo, lo)
        np.testing.assert_array_equal(codec.scale, scale)
        assert np.all(decoded <= hi + 1e-9)

    @settings(max_examples=25, deadline=None)
    @given(feature_matrix())
    def test_fp16_roundtrip_relative_error(self, features):
        codec = Fp16Codec().fit(features)
        decoded = codec.decode(codec.encode(features))
        # IEEE half carries ~2^-11 relative error (values here stay well
        # inside the fp16 range).
        assert np.allclose(decoded, features, rtol=1e-3, atol=1e-4)

    @settings(max_examples=25, deadline=None)
    @given(feature_matrix())
    def test_fp32_roundtrips_float32_sources_exactly(self, features):
        f32 = features.astype(np.float32).astype(np.float64)
        codec = Fp32Codec().fit(f32)
        np.testing.assert_array_equal(codec.decode(codec.encode(f32)), f32)

    def test_int8_requires_fit(self):
        with pytest.raises(RuntimeError, match="before fit"):
            Int8Codec().encode(np.zeros((2, 2)))
        with pytest.raises(RuntimeError, match="before fit"):
            Int8Codec().decode(np.zeros((2, 2), dtype=np.uint8))

    def test_int8_fit_rejects_non_matrix(self):
        with pytest.raises(ValueError, match="feature matrix"):
            Int8Codec().fit(np.zeros(5))

    def test_int8_empty_fit_is_identity_affine(self):
        codec = Int8Codec().fit(np.zeros((0, 4)))
        np.testing.assert_array_equal(codec.lo, np.zeros(4))
        np.testing.assert_array_equal(codec.scale, np.ones(4))
        np.testing.assert_array_equal(codec.zero_point, np.zeros(4))

    def test_determinism_across_fresh_codecs(self):
        rng = np.random.default_rng(3)
        features = rng.normal(size=(40, 6))
        a = Int8Codec().fit(features)
        b = Int8Codec().fit(features)
        np.testing.assert_array_equal(a.encode(features), b.encode(features))
        np.testing.assert_array_equal(a.decode(a.encode(features)),
                                      b.decode(b.encode(features)))


class TestRoundtripRows:
    @settings(max_examples=25, deadline=None)
    @given(feature_matrix())
    def test_int8_rows_error_within_per_row_half_scale(self, rows):
        out = roundtrip_rows("int8", rows)
        span = rows.max(axis=1, keepdims=True) - rows.min(axis=1, keepdims=True)
        scale = np.where(span > 0, span / 255.0, 1.0)
        assert np.all(np.abs(out - rows) <= scale / 2 + 1e-9)

    def test_constant_rows_are_exact_under_int8(self):
        rows = np.full((3, 5), 2.5)
        np.testing.assert_array_equal(roundtrip_rows("int8", rows), rows)

    def test_pure_function_of_input(self):
        rng = np.random.default_rng(0)
        rows = rng.normal(size=(8, 4))
        for tier in available_precisions():
            np.testing.assert_array_equal(roundtrip_rows(tier, rows),
                                          roundtrip_rows(tier, rows.copy()))

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError, match="rows, dim"):
            roundtrip_rows("fp16", np.zeros(4))


class TestRegistryResolution:
    def test_default_and_explicit(self, monkeypatch):
        monkeypatch.delenv("REPRO_PRECISION", raising=False)
        assert resolve_precision_name() == "fp32"
        assert resolve_precision_name("int8") == "int8"

    def test_env_resolution_and_flag_priority(self, monkeypatch):
        monkeypatch.setenv("REPRO_PRECISION", "fp16")
        assert resolve_precision_name() == "fp16"
        assert resolve_precision_name("int8") == "int8"   # explicit wins
        monkeypatch.setenv("REPRO_PRECISION", "")         # empty -> default
        assert resolve_precision_name() == "fp32"

    def test_unknown_name_lists_tiers_and_selectors(self):
        with pytest.raises(ValueError) as err:
            resolve_precision_name("bf16")
        message = str(err.value)
        assert "unknown precision tier 'bf16'" in message
        for tier in ("fp32", "fp16", "int8"):
            assert tier in message
        assert "REPRO_PRECISION" in message

    def test_stale_env_names_the_environment_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_PRECISION", "bogus")
        with pytest.raises(ValueError, match="REPRO_PRECISION environment"):
            resolve_precision_name()

    def test_register_custom_tier(self):
        class TruncCodec(Fp16Codec):
            name = "trunc"

        register_precision("trunc", TruncCodec)
        try:
            assert "trunc" in available_precisions()
            assert isinstance(make_precision_codec("trunc"), TruncCodec)
        finally:
            precision_mod._REGISTRY._factories.pop("trunc", None)
        assert "trunc" not in available_precisions()


class TestPrecisionPolicy:
    def test_defaults_are_exact(self):
        policy = PrecisionPolicy()
        assert policy.is_exact
        assert policy.bytes_per_element == 4

    def test_lossy_tier_bytes(self):
        assert PrecisionPolicy(tier="fp16").bytes_per_element == 2
        assert PrecisionPolicy(tier="int8").bytes_per_element == 1
        assert not PrecisionPolicy(tier="int8").is_exact

    def test_coerce(self, monkeypatch):
        monkeypatch.setenv("REPRO_PRECISION", "fp16")
        assert PrecisionPolicy.coerce(None).tier == "fp16"
        assert PrecisionPolicy.coerce("int8").tier == "int8"
        ready = PrecisionPolicy(tier="int8", mrr_budget=0.1)
        assert PrecisionPolicy.coerce(ready) is ready

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown precision tier"):
            PrecisionPolicy(tier="fp8")
        with pytest.raises(ValueError, match="mrr_budget"):
            PrecisionPolicy(mrr_budget=-0.1)
        with pytest.raises(ValueError, match="hot_fraction"):
            PrecisionPolicy(hot_fraction=0.8, warm_fraction=0.4)


@pytest.fixture
def store_pair(featured_graph):
    """(exact store, int8 store) over the same graph, no caches."""
    exact = FeatureStore(featured_graph, cost_model=TransferCostModel())
    quant = FeatureStore(featured_graph, cost_model=TransferCostModel(),
                         precision="int8")
    return exact, quant


class TestFeatureStorePrecision:
    def test_fp32_store_is_bitwise_todays_path(self, featured_graph):
        plain = FeatureStore(featured_graph)
        fp32 = FeatureStore(featured_graph, precision="fp32")
        ids = np.arange(0, featured_graph.num_edges, 3)
        np.testing.assert_array_equal(plain.slice_edge_features(ids),
                                      fp32.slice_edge_features(ids))
        assert fp32.stats.as_dict() == plain.stats.as_dict()

    def test_default_store_ignores_the_environment(self, featured_graph,
                                                   monkeypatch):
        # Env resolution happens at the config/engine layer only: a directly
        # constructed store stays exact (and bitwise-deterministic) even
        # under a REPRO_PRECISION CI matrix cell.
        monkeypatch.setenv("REPRO_PRECISION", "int8")
        store = FeatureStore(featured_graph)
        assert store.precision.is_exact

    def test_quantized_error_bound_and_byte_accounting(self, store_pair,
                                                       featured_graph):
        exact, quant = store_pair
        ids = np.arange(featured_graph.num_edges)
        exact_rows = exact.slice_edge_features(ids)
        quant_rows = quant.slice_edge_features(ids)
        scale = quant._edge_codec.scale
        assert np.all(np.abs(quant_rows - exact_rows) <= scale / 2 + 1e-9)
        # int8 moves a quarter of the bytes fp32 does (float32 graph arrays).
        assert quant.edge_bytes_per_row * 4 == exact.edge_bytes_per_row
        assert quant.stats.bytes_from_ram * 4 == exact.stats.bytes_from_ram

    def test_node_feature_path_quantizes_too(self, store_pair, featured_graph):
        exact, quant = store_pair
        ids = np.arange(featured_graph.num_nodes)
        exact_rows = exact.slice_node_features(ids)
        quant_rows = quant.slice_node_features(ids)
        scale = quant._node_codec.scale
        assert np.all(np.abs(quant_rows - exact_rows) <= scale / 2 + 1e-9)
        assert quant.node_bytes_per_row * 4 == exact.node_bytes_per_row

    def test_cache_membership_never_changes_values(self, featured_graph):
        cached = FeatureStore(
            featured_graph,
            edge_cache=TieredFeatureCache(featured_graph.num_edges, 20,
                                          featured_graph.edge_dim, seed=1),
            precision="int8")
        bare = FeatureStore(featured_graph, precision="int8")
        ids = np.arange(0, featured_graph.num_edges, 2)
        np.testing.assert_array_equal(cached.slice_edge_features(ids),
                                      bare.slice_edge_features(ids))

    def test_sync_encoded_after_graph_growth(self, featured_graph):
        graph = featured_graph.select_events(
            np.arange(featured_graph.num_edges))
        store = FeatureStore(graph, precision="int8")
        before = store.slice_edge_features(np.arange(4)).copy()
        lo, scale = (store._edge_codec.lo.copy(),
                     store._edge_codec.scale.copy())
        graph.append_events(graph.src[:6], graph.dst[:6],
                            graph.ts[-1] + 1.0 + np.arange(6.0),
                            edge_feat=graph.edge_feat[:6])
        grown = store.slice_edge_features(
            np.arange(graph.num_edges - 6, graph.num_edges))
        assert grown.shape[0] == 6
        # Frozen codec: old rows and fit state are untouched by the tail sync.
        np.testing.assert_array_equal(store._edge_codec.lo, lo)
        np.testing.assert_array_equal(store._edge_codec.scale, scale)
        np.testing.assert_array_equal(
            store.slice_edge_features(np.arange(4)), before)


class TestTieredFeatureCache:
    def test_capacity_math(self):
        cache = TieredFeatureCache(10_000, 100, edge_dim=8)
        assert cache.capacity == 30 + 60 + 160
        assert cache.effective_capacity_multiplier == 2.5
        counts = cache.tier_counts()
        assert counts == {"fp32": 30, "fp16": 60, "int8": 160}

    def test_capacity_clamped_by_universe(self):
        cache = TieredFeatureCache(40, 100, edge_dim=8)
        assert cache.capacity == 40

    def test_validation(self):
        with pytest.raises(ValueError, match="byte_budget_rows"):
            TieredFeatureCache(100, -1, edge_dim=4)
        with pytest.raises(ValueError, match="hot_fraction"):
            TieredFeatureCache(100, 10, edge_dim=4, hot_fraction=0.9,
                               warm_fraction=0.3)

    def test_hot_rows_are_the_most_frequent(self):
        cache = TieredFeatureCache(1000, 20, edge_dim=4, seed=0)
        hot_ids = np.arange(5)
        cache.lookup(np.repeat(hot_ids, 50))
        cache.lookup(np.arange(5, 600))
        cache.end_epoch()
        assert np.all(cache.tier_itemsize[hot_ids] == 4)

    def test_cooling_demotes_instead_of_evicting(self):
        cache = TieredFeatureCache(1000, 20, edge_dim=4, seed=0,
                                   epsilon=1.0)
        # Epoch 1: ids 0..4 are hottest -> land in the fp32 region.
        cache.lookup(np.repeat(np.arange(5), 60))
        cache.lookup(np.arange(cache.capacity + 30))
        cache.end_epoch()
        assert np.all(cache.tier_itemsize[:5] == 4)
        # Epoch 2: they cool (one access each) while 900.. heat up; with the
        # cache still holding them they demote to a narrower tier, not out.
        cache.lookup(np.arange(5))
        cache.lookup(np.repeat(np.arange(900, 900 + cache.capacity - 8), 40))
        cache.end_epoch()
        assert np.all(cache.cached[:5] == (cache.tier_itemsize[:5] > 0))
        demoted = cache.tier_itemsize[:5][cache.cached[:5]]
        assert demoted.size == 0 or np.all(demoted < 4)

    def test_hit_accounting_matches_uncompressed_cache(self):
        base = DynamicFeatureCache(500, 250, seed=3)
        tiered = TieredFeatureCache(500, 100, edge_dim=4, seed=3)
        assert tiered.capacity == 250
        rng = np.random.default_rng(11)
        for _ in range(3):
            ids = rng.integers(0, 500, size=400)
            unique_ids, counts = np.unique(ids, return_counts=True)
            base.lookup_unique(unique_ids, counts)
            tiered.lookup_unique(unique_ids, counts)
            base.end_epoch()
            tiered.end_epoch()
        # Same capacity in rows + same policy -> identical hit accounting:
        # tiering changes byte accounting only.
        assert tiered.hit_rate_history == base.hit_rate_history

    def test_hit_row_bytes_charges_residency_tiers(self):
        cache = TieredFeatureCache(1000, 20, edge_dim=4, seed=0)
        cache.lookup(np.repeat(np.arange(cache.capacity), 3))
        cache.end_epoch()
        cached = cache.cached_ids()
        expected = 4 * int(cache.tier_itemsize[cached].sum())
        assert cache.hit_row_bytes(cached, full_row_bytes=16) == expected
        # A full-width cache would charge capacity * 16 bytes; the tiered
        # one must charge strictly less for the same hits.
        assert expected < cached.size * 16

    def test_budget_capacity_grows_and_never_shrinks(self):
        cache = TieredFeatureCache(10_000, 100, edge_dim=8)
        assert cache.budget_capacity(50) == cache.capacity
        assert cache.budget_capacity(200) == 60 + 120 + 320
        assert cache.byte_budget_rows == 200

    def test_grow_extends_tier_state(self):
        cache = TieredFeatureCache(100, 20, edge_dim=4)
        cache.grow(150, capacity=cache.capacity)
        assert cache.tier_itemsize.size == 150
        assert np.all(cache.tier_itemsize[100:] == 0)


class TestTieredNodeEmbeddingCache:
    def _filled(self, budget=10, num_nodes=200, dim=6, seed=0):
        cache = TieredNodeEmbeddingCache(num_nodes, budget)
        rng = np.random.default_rng(seed)
        nodes = np.arange(cache.capacity)
        rows = rng.normal(size=(nodes.size, dim))
        cache.insert(nodes, rows, np.zeros(nodes.size), now_event=0)
        return cache, nodes, rows

    def test_capacity_math(self):
        cache = TieredNodeEmbeddingCache(1000, 10)
        # 3 hot + 6 warm + 15 cold: the cold count is floor(10 * (1 - 0.3 -
        # 0.3) * 4) and 1 - 0.3 - 0.3 rounds just below 0.4 in binary.
        assert cache.capacity == 3 + 6 + 15
        assert cache.effective_capacity_multiplier == 2.4

    def test_install_applies_slot_tier_roundtrip(self):
        cache, nodes, rows = self._filled()
        hits, cached = cache.lookup(nodes, np.zeros(nodes.size), now_event=0)
        assert hits.all()
        slots = cache.slot_of[nodes]
        for itemsize, tier in cache._TIERS:
            in_tier = cache._slot_tier[slots] == itemsize
            if in_tier.any():
                np.testing.assert_array_equal(
                    cached[in_tier], roundtrip_rows(tier, rows[in_tier]))
        # Hot slots are allocated first: fresh rows start full width.
        assert np.all(cache._slot_tier[slots[:3]] == 4)

    def test_rebalance_demotes_cooled_entries(self):
        cache, nodes, _ = self._filled()
        hot_before = nodes[cache._slot_tier[cache.slot_of[nodes]] == 4]
        cold = nodes[-1]
        cache.lookup(np.repeat(cold, 50), np.zeros(50), now_event=0)
        cache.end_epoch()                       # rebalance by frequency
        assert cache.slot_of[cold] >= 0
        assert cache._slot_tier[cache.slot_of[cold]] == 4
        # One previous hot occupant was displaced down, none evicted.
        assert cache.num_cached == cache.capacity
        demoted = [n for n in hot_before
                   if cache._slot_tier[cache.slot_of[n]] < 4]
        assert len(demoted) == 1

    def test_tier_counts_track_occupancy(self):
        cache = TieredNodeEmbeddingCache(100, 10)
        assert cache.tier_counts() == {"fp32": 0, "fp16": 0, "int8": 0}
        cache.insert(np.arange(4), np.ones((4, 3)), np.zeros(4), now_event=0)
        counts = cache.tier_counts()
        assert counts["fp32"] == 3 and counts["fp16"] == 1

    def test_replay_determinism(self):
        runs = []
        for _ in range(2):
            cache, nodes, rows = self._filled(seed=7)
            cache.lookup(nodes[:5], np.zeros(5), now_event=0)
            cache.end_epoch()
            _, cached = cache.lookup(nodes, np.zeros(nodes.size), now_event=0)
            runs.append(cached)
        np.testing.assert_array_equal(runs[0], runs[1])

    def test_exact_cache_unchanged_contract(self):
        # The plain cache stays the fp32 path: no quantization on install.
        cache = NodeEmbeddingCache(50, 8)
        rows = np.random.default_rng(0).normal(size=(4, 5))
        cache.insert(np.arange(4), rows, np.zeros(4), now_event=0)
        _, cached = cache.lookup(np.arange(4), np.zeros(4), now_event=0)
        np.testing.assert_array_equal(cached, rows)

    def test_validation(self):
        with pytest.raises(ValueError, match="byte_budget_rows"):
            TieredNodeEmbeddingCache(10, -1)
        with pytest.raises(ValueError, match="hot_fraction"):
            TieredNodeEmbeddingCache(10, 5, hot_fraction=0.7,
                                     warm_fraction=0.7)


class TestConfigAndTrainerSelection:
    def test_resolved_precision(self, monkeypatch):
        from repro.core import TaserConfig
        monkeypatch.delenv("REPRO_PRECISION", raising=False)
        assert TaserConfig().resolved_precision == "fp32"
        assert TaserConfig(precision="int8").resolved_precision == "int8"
        monkeypatch.setenv("REPRO_PRECISION", "fp16")
        assert TaserConfig().resolved_precision == "fp16"

    def test_config_rejects_unknown_tier_and_bad_budget(self):
        from repro.core import TaserConfig
        with pytest.raises(ValueError, match="unknown precision tier"):
            TaserConfig(precision="fp64")
        with pytest.raises(ValueError, match="precision_mrr_budget"):
            TaserConfig(precision_mrr_budget=-1.0)

    def test_trainer_installs_tiered_cache_for_lossy_tiers(self, small_graph):
        from repro.core import TaserConfig, TaserTrainer
        cfg = dict(epochs=1, max_batches_per_epoch=2, batch_size=50,
                   adaptive_minibatch=False, adaptive_neighbor=False,
                   num_candidates=10)
        # Pin the exact tier explicitly so the assertion holds even when the
        # surrounding environment (e.g. the CI fp16 matrix cell) sets
        # REPRO_PRECISION to a lossy tier.
        exact = TaserTrainer(small_graph, TaserConfig(precision="fp32", **cfg))
        lossy = TaserTrainer(small_graph,
                             TaserConfig(precision="int8", **cfg))
        assert type(exact.cache) is DynamicFeatureCache
        assert type(lossy.cache) is TieredFeatureCache
        stats = lossy.train_epoch()
        assert stats.precision == "int8"
        assert exact.train_epoch().precision == "fp32"
