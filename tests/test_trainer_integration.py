"""Integration tests: full TASER training loops on tiny synthetic graphs.

These exercise the complete pipeline of Algorithm 1 — graph generation,
T-CSR, neighbor finding, feature slicing through the simulated cache,
adaptive mini-batch selection, adaptive neighbor sampling, TGNN training and
MRR evaluation — at a scale that runs in a few seconds per test.
"""

import numpy as np
import pytest

from repro.core import TaserConfig, TaserTrainer
from repro.graph import CTDGConfig, generate_ctdg, chronological_split


def tiny_config(**overrides):
    base = dict(hidden_dim=8, time_dim=4, num_neighbors=4, num_candidates=8,
                batch_size=64, epochs=1, max_batches_per_epoch=4,
                eval_max_edges=40, eval_negatives=10, lr=1e-3, dropout=0.0)
    base.update(overrides)
    return TaserConfig(**base)


@pytest.fixture(scope="module")
def train_graph():
    return generate_ctdg(CTDGConfig(num_src=40, num_dst=25, num_events=1500,
                                    num_communities=4, edge_dim=8, seed=21,
                                    noise_prob=0.15, repeat_prob=0.4))


class TestConfig:
    def test_variant_names(self):
        assert tiny_config(adaptive_minibatch=False, adaptive_neighbor=False
                           ).variant_name() == "Baseline"
        assert tiny_config(adaptive_minibatch=True, adaptive_neighbor=False
                           ).variant_name() == "w/ Ada. Mini-Batch"
        assert tiny_config(adaptive_minibatch=False, adaptive_neighbor=True
                           ).variant_name() == "w/ Ada. Neighbor"
        assert tiny_config().variant_name() == "TASER"

    def test_layer_count_by_backbone(self):
        assert tiny_config(backbone="tgat").num_layers == 2
        assert tiny_config(backbone="graphmixer").num_layers == 1

    def test_finder_policy_defaults(self):
        assert tiny_config(backbone="tgat").resolved_finder_policy == "uniform"
        assert tiny_config(backbone="graphmixer").resolved_finder_policy == "recent"
        assert tiny_config(finder_policy="recent").resolved_finder_policy == "recent"

    def test_tgl_finder_incompatible_with_adaptive_minibatch(self):
        with pytest.raises(ValueError):
            tiny_config(finder="tgl", adaptive_minibatch=True)
        # but fine for the chronological baseline
        tiny_config(finder="tgl", adaptive_minibatch=False)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            tiny_config(backbone="tgn")
        with pytest.raises(ValueError):
            tiny_config(num_candidates=2, num_neighbors=5)
        with pytest.raises(ValueError):
            tiny_config(cache_ratio=1.5)


class TestTrainingVariants:
    @pytest.mark.parametrize("backbone", ["graphmixer", "tgat"])
    def test_baseline_epoch_runs_and_loss_finite(self, train_graph, backbone):
        cfg = tiny_config(backbone=backbone, adaptive_minibatch=False,
                          adaptive_neighbor=False)
        trainer = TaserTrainer(train_graph, cfg)
        stats = trainer.train_epoch()
        assert np.isfinite(stats.model_loss)
        assert stats.runtime["PP"] > 0
        assert "AS" not in stats.runtime or stats.runtime["AS"] == 0

    def test_full_taser_epoch(self, train_graph):
        cfg = tiny_config(backbone="graphmixer")
        trainer = TaserTrainer(train_graph, cfg)
        stats = trainer.train_epoch()
        assert np.isfinite(stats.model_loss)
        assert stats.runtime["AS"] > 0
        # importance scores of used edges changed away from the uniform init
        assert np.any(trainer.selector.scores != 1.0)

    def test_loss_decreases_over_epochs(self, train_graph):
        cfg = tiny_config(backbone="graphmixer", adaptive_minibatch=False,
                          adaptive_neighbor=False, epochs=4,
                          max_batches_per_epoch=6, lr=3e-3)
        trainer = TaserTrainer(train_graph, cfg)
        losses = [trainer.train_epoch().model_loss for _ in range(4)]
        assert losses[-1] < losses[0]

    def test_sampler_parameters_change(self, train_graph):
        cfg = tiny_config(backbone="graphmixer", adaptive_minibatch=False,
                          adaptive_neighbor=True, sampler_lr=1e-2)
        trainer = TaserTrainer(train_graph, cfg)
        before = {k: v.copy() for k, v in trainer.sampler.state_dict().items()}
        trainer.train_epoch()
        after = trainer.sampler.state_dict()
        assert any(not np.allclose(before[k], after[k]) for k in before)

    def test_evaluation_report(self, train_graph):
        cfg = tiny_config(backbone="graphmixer")
        trainer = TaserTrainer(train_graph, cfg)
        trainer.train_epoch()
        report = trainer.evaluate("val")
        assert 0.0 <= report["mrr"] <= 1.0
        assert report["hits@10"] >= report["hits@1"]

    def test_fit_returns_result(self, train_graph):
        cfg = tiny_config(backbone="graphmixer", epochs=2)
        trainer = TaserTrainer(train_graph, cfg)
        result = trainer.fit()
        assert result.variant == "TASER"
        assert len(result.history) == 2
        assert {"NF", "FS", "AS", "PP"} <= set(result.runtime_breakdown)
        assert 0.0 <= result.test_mrr <= 1.0

    def test_cache_integrated(self, train_graph):
        cfg = tiny_config(backbone="graphmixer", cache_ratio=0.3, epochs=2)
        trainer = TaserTrainer(train_graph, cfg)
        result = trainer.fit(evaluate_val=False, evaluate_test=False)
        assert trainer.cache is not None
        assert len(result.cache_hit_rates) == 2
        assert all(0.0 <= r <= 1.0 for r in result.cache_hit_rates)

    def test_no_cache_when_ratio_zero(self, train_graph):
        cfg = tiny_config(cache_ratio=0.0)
        trainer = TaserTrainer(train_graph, cfg)
        assert trainer.cache is None

    def test_chronological_baseline_with_tgl_finder(self, train_graph):
        cfg = tiny_config(backbone="graphmixer", adaptive_minibatch=False,
                          adaptive_neighbor=False, finder="tgl")
        trainer = TaserTrainer(train_graph, cfg)
        stats = trainer.train_epoch()
        assert np.isfinite(stats.model_loss)
        # second epoch must reset the pointer array and work again
        stats2 = trainer.train_epoch()
        assert np.isfinite(stats2.model_loss)

    def test_original_finder_variant(self, train_graph):
        cfg = tiny_config(backbone="graphmixer", adaptive_minibatch=False,
                          adaptive_neighbor=False, finder="original",
                          max_batches_per_epoch=2)
        trainer = TaserTrainer(train_graph, cfg)
        assert np.isfinite(trainer.train_epoch().model_loss)

    def test_deterministic_with_same_seed(self, train_graph):
        cfg = tiny_config(backbone="graphmixer", seed=33, dropout=0.0)
        a = TaserTrainer(train_graph, cfg).train_epoch().model_loss
        b = TaserTrainer(train_graph, cfg).train_epoch().model_loss
        assert a == pytest.approx(b, rel=1e-9)

    def test_node_featured_graph(self):
        g = generate_ctdg(CTDGConfig(num_src=30, num_dst=0, bipartite=False,
                                     num_events=800, edge_dim=6, node_dim=6, seed=9))
        cfg = tiny_config(backbone="tgat", max_batches_per_epoch=2)
        trainer = TaserTrainer(g, cfg)
        assert np.isfinite(trainer.train_epoch().model_loss)

    def test_explicit_split_respected(self, train_graph):
        split = chronological_split(train_graph, 0.5, 0.25)
        cfg = tiny_config(adaptive_minibatch=False, adaptive_neighbor=False)
        trainer = TaserTrainer(train_graph, cfg, split=split)
        assert trainer.split.num_train == split.num_train

    def test_tgat_analytic_sample_loss_path(self, train_graph):
        cfg = tiny_config(backbone="tgat", sample_loss="tgat_analytic",
                          max_batches_per_epoch=2)
        trainer = TaserTrainer(train_graph, cfg)
        stats = trainer.train_epoch()
        assert np.isfinite(stats.sample_loss)
