"""Tests for ranking metrics and negative sampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.eval import (reciprocal_ranks, mrr, hits_at_k, ranking_report,
                        destination_pool, NegativeSampler)
from repro.graph import CTDGConfig, generate_ctdg


class TestMetrics:
    def test_perfect_ranking(self):
        pos = np.array([10.0, 10.0])
        neg = np.zeros((2, 5))
        assert mrr(pos, neg) == 1.0
        assert hits_at_k(pos, neg, 1) == 1.0

    def test_worst_ranking(self):
        pos = np.array([0.0])
        neg = np.full((1, 9), 5.0)
        assert mrr(pos, neg) == pytest.approx(0.1)
        assert hits_at_k(pos, neg, 1) == 0.0

    def test_middle_rank(self):
        pos = np.array([5.0])
        neg = np.array([[10.0, 1.0, 2.0, 3.0]])  # one negative above -> rank 2
        assert mrr(pos, neg) == pytest.approx(0.5)

    def test_ties_average(self):
        pos = np.array([5.0])
        neg = np.array([[5.0]])
        assert reciprocal_ranks(pos, neg)[0] == pytest.approx(1.0 / 1.5)

    def test_random_scores_expected_mrr(self):
        """For random scores against K=49 negatives, MRR ~ H(50)/50 ~ 0.09."""
        rng = np.random.default_rng(0)
        pos = rng.standard_normal(3000)
        neg = rng.standard_normal((3000, 49))
        value = mrr(pos, neg)
        expected = np.mean(1.0 / np.arange(1, 51))
        assert abs(value - expected) < 0.01

    def test_report_keys(self):
        report = ranking_report(np.array([1.0]), np.array([[0.0, 2.0]]))
        assert {"mrr", "hits@1", "hits@3", "hits@10"} == set(report)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            reciprocal_ranks(np.zeros((2, 2)), np.zeros((2, 2)))
        with pytest.raises(ValueError):
            hits_at_k(np.zeros(2), np.zeros((2, 3)), 0)


@settings(max_examples=25, deadline=None)
@given(arrays(np.float64, (7,), elements=st.floats(-5, 5)),
       arrays(np.float64, (7, 9), elements=st.floats(-5, 5)))
def test_property_mrr_bounds_and_monotonicity(pos, neg):
    value = mrr(pos, neg)
    assert 1.0 / 10 - 1e-12 <= value <= 1.0 + 1e-12
    # Increasing every positive score can never decrease the MRR.
    assert mrr(pos + 1.0, neg) >= value - 1e-12


class TestNegativeSampling:
    def test_bipartite_pool_is_destination_partition(self, small_graph):
        pool = destination_pool(small_graph)
        n_src = small_graph.meta["num_src"]
        assert pool.min() >= n_src
        assert pool.size == small_graph.meta["num_dst"]

    def test_unipartite_pool_observed_destinations(self):
        g = generate_ctdg(CTDGConfig(num_src=20, num_dst=0, bipartite=False,
                                     num_events=200, seed=0))
        pool = destination_pool(g)
        assert set(pool) == set(np.unique(g.dst))

    def test_exclusion(self, small_graph):
        sampler = NegativeSampler(small_graph, seed=0)
        exclude = np.full(500, int(destination_pool(small_graph)[0]))
        draws = sampler.sample(500, exclude=exclude)
        assert (draws == exclude).mean() < 0.05

    def test_matrix_shape(self, small_graph):
        sampler = NegativeSampler(small_graph, seed=0)
        mat = sampler.sample_matrix(8, 49, exclude=small_graph.dst[:8])
        assert mat.shape == (8, 49)
        pool = set(destination_pool(small_graph).tolist())
        assert set(mat.reshape(-1).tolist()) <= pool

    def test_determinism_by_seed(self, small_graph):
        a = NegativeSampler(small_graph, seed=5).sample(100)
        b = NegativeSampler(small_graph, seed=5).sample(100)
        assert np.array_equal(a, b)
