"""Tests for the pipelined mini-batch engines (sync | prefetch | aot).

The engines' acceptance bar is *bitwise determinism*: under a fixed seed the
prefetch and AOT paths must produce identical batches — and therefore
identical per-batch losses and MRR — to the synchronous reference path.
"""

import numpy as np
import pytest

from repro.core import (AOTBatchEngine, PrefetchBatchEngine, SyncBatchEngine,
                        TaserConfig, TaserTrainer, make_engine, plan_capability)
from repro.graph import CTDGConfig, build_tcsr, generate_ctdg
from repro.sampling import GPUNeighborFinder, OriginalNeighborFinder


def engine_config(**overrides):
    base = dict(hidden_dim=8, time_dim=4, num_neighbors=4, num_candidates=8,
                batch_size=64, epochs=1, max_batches_per_epoch=6,
                eval_max_edges=40, eval_negatives=10, lr=1e-3, dropout=0.0)
    base.update(overrides)
    return TaserConfig(**base)


@pytest.fixture(scope="module")
def engine_graph():
    return generate_ctdg(CTDGConfig(num_src=40, num_dst=25, num_events=1400,
                                    num_communities=4, edge_dim=8, seed=21,
                                    noise_prob=0.15, repeat_prob=0.4))


def run_epochs(graph, epochs=2, **overrides):
    """Train ``epochs`` epochs; return (per-batch losses, val MRR, trainer)."""
    trainer = TaserTrainer(graph, engine_config(epochs=epochs, **overrides))
    losses = []
    for _ in range(epochs):
        losses.extend(trainer.train_epoch().batch_losses)
    mrr = trainer.evaluate("val")["mrr"]
    return losses, mrr, trainer


VARIANT_MATRIX = [
    # (label, overrides): covers full / first_hop / fallback capabilities
    # across backbones (1- and 2-layer) and all three finders.
    ("baseline-graphmixer", dict(backbone="graphmixer", adaptive_minibatch=False,
                                 adaptive_neighbor=False)),
    ("baseline-tgat", dict(backbone="tgat", adaptive_minibatch=False,
                           adaptive_neighbor=False)),
    # 2-layer vectorised AOT plan (deterministic policy across both hops).
    ("baseline-tgat-recent", dict(backbone="tgat", finder_policy="recent",
                                  adaptive_minibatch=False,
                                  adaptive_neighbor=False)),
    ("baseline-original-finder", dict(backbone="graphmixer", finder="original",
                                      adaptive_minibatch=False,
                                      adaptive_neighbor=False)),
    ("baseline-tgl-finder", dict(backbone="graphmixer", finder="tgl",
                                 adaptive_minibatch=False,
                                 adaptive_neighbor=False)),
    ("ada-neighbor-graphmixer", dict(backbone="graphmixer",
                                     adaptive_minibatch=False,
                                     adaptive_neighbor=True)),
    ("ada-neighbor-tgat", dict(backbone="tgat", adaptive_minibatch=False,
                               adaptive_neighbor=True)),
    ("taser-graphmixer", dict(backbone="graphmixer", adaptive_minibatch=True,
                              adaptive_neighbor=True)),
]


class TestDeterminism:
    @pytest.mark.parametrize("mode", ["prefetch", "aot"])
    @pytest.mark.parametrize("label,overrides",
                             VARIANT_MATRIX, ids=[v[0] for v in VARIANT_MATRIX])
    def test_identical_losses_and_mrr_vs_sync(self, engine_graph, mode, label,
                                              overrides):
        sync_losses, sync_mrr, _ = run_epochs(engine_graph, batch_engine="sync",
                                              **overrides)
        losses, mrr, trainer = run_epochs(engine_graph, batch_engine=mode,
                                          **overrides)
        assert losses == sync_losses, \
            f"{mode} diverged from sync on {label} " \
            f"(effective mode {trainer.engine.effective_mode})"
        assert mrr == sync_mrr
        assert len(sync_losses) > 0

    def test_aot_plan_chunking_does_not_change_results(self, engine_graph,
                                                       monkeypatch):
        kw = dict(backbone="tgat", finder_policy="recent",
                  adaptive_minibatch=False, adaptive_neighbor=False)
        sync_losses, sync_mrr, _ = run_epochs(engine_graph, batch_engine="sync",
                                              **kw)
        # Force multiple planning chunks per epoch (6 batches / chunk of 2).
        monkeypatch.setattr(AOTBatchEngine, "plan_chunk", 2)
        losses, mrr, trainer = run_epochs(engine_graph, batch_engine="aot", **kw)
        assert trainer.engine.vectorised
        assert losses == sync_losses
        assert mrr == sync_mrr

    def test_prefetch_depth_does_not_change_results(self, engine_graph):
        kw = dict(backbone="graphmixer", adaptive_minibatch=False,
                  adaptive_neighbor=False, batch_engine="prefetch")
        one, _, _ = run_epochs(engine_graph, prefetch_depth=1, **kw)
        four, _, _ = run_epochs(engine_graph, prefetch_depth=4, **kw)
        assert one == four


class TestCapability:
    def test_capability_matrix(self, engine_graph):
        def cap(**kw):
            trainer = TaserTrainer(engine_graph, engine_config(**kw))
            return plan_capability(trainer.config, trainer.finder)

        assert cap(adaptive_minibatch=False, adaptive_neighbor=False) == "full"
        # 1-layer backbone: hop-1 is the only hop, plannable under any policy.
        assert cap(backbone="graphmixer", adaptive_minibatch=False,
                   adaptive_neighbor=True) == "first_hop"
        # 2-layer + deterministic policy: deeper hops are stateless too.
        assert cap(backbone="tgat", finder_policy="recent",
                   adaptive_minibatch=False, adaptive_neighbor=True) == "first_hop"
        # 2-layer + stochastic policy: consumer-side hop-2 draws would race
        # the producer's RNG stream.
        assert cap(backbone="tgat", adaptive_minibatch=False,
                   adaptive_neighbor=True) == "none"
        # Adaptive mini-batch selection: the schedule itself is feedback-driven.
        assert cap(adaptive_minibatch=True, adaptive_neighbor=False) == "none"

    def test_effective_mode_reports_fallback(self, engine_graph):
        trainer = TaserTrainer(engine_graph, engine_config(
            batch_engine="prefetch", adaptive_minibatch=True))
        assert trainer.engine.mode == "prefetch"
        assert trainer.engine.effective_mode == "sync"
        assert trainer.engine.is_fallback
        stats = trainer.train_epoch()
        assert stats.engine_mode == "sync"
        assert np.isfinite(stats.model_loss)

    def test_make_engine_selects_class(self, engine_graph):
        trainer = TaserTrainer(engine_graph, engine_config())
        assert isinstance(make_engine(trainer, "sync"), SyncBatchEngine)
        assert isinstance(make_engine(trainer, "prefetch"), PrefetchBatchEngine)
        assert isinstance(make_engine(trainer, "aot"), AOTBatchEngine)
        with pytest.raises(ValueError):
            make_engine(trainer, "warp")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            engine_config(batch_engine="lazy")
        with pytest.raises(ValueError):
            engine_config(prefetch_depth=0)


class TestPrefetchShutdown:
    @pytest.fixture(autouse=True)
    def _legacy_prefetch_path(self, monkeypatch):
        # These tests assert the prefetch engine's own producer-thread
        # lifecycle.  Under REPRO_PREP_POOL the engine routes its epochs
        # through the prep runner and never starts that thread (the pool has
        # its own shutdown tests in test_prep_pool.py), so pin the pooled
        # runtime off regardless of the environment matrix cell.
        monkeypatch.delenv("REPRO_PREP_POOL", raising=False)
        monkeypatch.delenv("REPRO_PREP_CACHE_MB", raising=False)

    def test_consumer_exception_stops_producer(self, engine_graph):
        trainer = TaserTrainer(engine_graph, engine_config(
            backbone="graphmixer", adaptive_minibatch=False,
            adaptive_neighbor=False, batch_engine="prefetch", prefetch_depth=2))

        class Boom(RuntimeError):
            pass

        def explode(prepared):
            raise Boom("consumer failure")

        original = trainer._train_prepared
        trainer._train_prepared = explode
        with pytest.raises(Boom):
            trainer.train_epoch()
        # The bounded queue must not leave the producer thread blocked.
        trainer.engine._thread.join(timeout=5.0)
        assert not trainer.engine.producer_alive

        # The engine must be reusable after the failure.
        trainer._train_prepared = original
        stats = trainer.train_epoch()
        assert np.isfinite(stats.model_loss)
        assert not trainer.engine.producer_alive

    def test_producer_exception_propagates(self, engine_graph):
        trainer = TaserTrainer(engine_graph, engine_config(
            backbone="graphmixer", adaptive_minibatch=False,
            adaptive_neighbor=False, batch_engine="prefetch"))

        def broken_sample(*args, **kwargs):
            raise RuntimeError("finder exploded")

        trainer.finder.sample = broken_sample
        with pytest.raises(RuntimeError, match="finder exploded"):
            trainer.train_epoch()
        trainer.engine._thread.join(timeout=5.0)
        assert not trainer.engine.producer_alive

    def test_producer_thread_finishes_after_epoch(self, engine_graph):
        trainer = TaserTrainer(engine_graph, engine_config(
            backbone="graphmixer", adaptive_minibatch=False,
            adaptive_neighbor=False, batch_engine="prefetch"))
        trainer.train_epoch()
        assert not trainer.engine.producer_alive


class TestTimings:
    def test_prefetch_phase_breakdown_collected(self, engine_graph):
        _, _, trainer = run_epochs(engine_graph, epochs=1,
                                   backbone="graphmixer",
                                   adaptive_minibatch=False,
                                   adaptive_neighbor=False,
                                   batch_engine="prefetch")
        runtime = trainer.history[-1].runtime
        # NF/FS happen in the producer thread but must still land in the
        # epoch's phase breakdown.
        assert runtime["NF"] > 0
        assert runtime["FS"] > 0
        assert runtime["PP"] > 0
        assert trainer.history[-1].engine_mode == "prefetch"

    def test_aot_phase_breakdown_recorded(self, engine_graph):
        _, _, trainer = run_epochs(engine_graph, epochs=1,
                                   backbone="graphmixer",
                                   adaptive_minibatch=False,
                                   adaptive_neighbor=False,
                                   batch_engine="aot")
        runtime = trainer.history[-1].runtime
        assert runtime["NF"] > 0
        assert runtime["FS"] > 0
        assert runtime["PP"] > 0
        assert trainer.history[-1].engine_mode == "aot"


class TestVectorisedPlan:
    """The AOT plan's vectorised recent-policy kernel must equal the
    per-query finders bit-for-bit (that is what makes the bypass legal)."""

    @pytest.fixture(scope="class")
    def plan_graph(self):
        return generate_ctdg(CTDGConfig(num_src=30, num_dst=20, num_events=900,
                                        num_communities=3, edge_dim=6, seed=5))

    def test_vectorised_recent_equals_original_finder(self, plan_graph):
        tcsr = build_tcsr(plan_graph)
        rng = np.random.default_rng(3)
        idx = rng.integers(0, plan_graph.num_edges, 300)
        nodes, times = plan_graph.src[idx], plan_graph.ts[idx]
        reference = OriginalNeighborFinder(tcsr, policy="recent").sample(
            nodes, times, 7)
        vectorised = GPUNeighborFinder(tcsr, policy="recent").sample(
            nodes, times, 7)
        assert np.array_equal(reference.nodes, vectorised.nodes)
        assert np.array_equal(reference.eids, vectorised.eids)
        assert np.array_equal(reference.times, vectorised.times)
        assert np.array_equal(reference.mask, vectorised.mask)

    def test_aot_uses_vectorised_plan_only_for_recent(self, engine_graph):
        gm = TaserTrainer(engine_graph, engine_config(
            backbone="graphmixer", adaptive_minibatch=False,
            adaptive_neighbor=False, batch_engine="aot"))
        assert gm.engine.vectorised  # graphmixer resolves to 'recent'
        tgat = TaserTrainer(engine_graph, engine_config(
            backbone="tgat", adaptive_minibatch=False,
            adaptive_neighbor=False, batch_engine="aot"))
        assert not tgat.engine.vectorised  # 'uniform' falls back to replay


class TestEmptyNeighborhoods:
    """Regression tests: roots with no past interactions must flow through
    the whole pipeline as fully-masked sentinel rows (ISSUE satellite)."""

    def test_original_finder_empty_rows_fully_masked(self, engine_graph):
        tcsr = build_tcsr(engine_graph)
        finder = OriginalNeighborFinder(tcsr, policy="recent")
        # Query at (and before) the first event: nothing is in the past.
        t0 = float(engine_graph.ts.min())
        nodes = np.arange(5, dtype=np.int64)
        batch = finder.sample(nodes, np.full(5, t0), 4)
        assert not batch.mask.any()
        batch.check_padding()  # sentinel contract

    def test_check_padding_catches_violations(self):
        from repro.sampling import NeighborBatch
        bad = NeighborBatch(
            root_nodes=np.array([0]), root_times=np.array([10.0]),
            nodes=np.array([[7]]), eids=np.array([[0]]),
            times=np.array([[0.0]]), mask=np.array([[False]]))
        with pytest.raises(ValueError):
            bad.check_padding()

    def test_empty_neighborhood_minibatch_trains(self, engine_graph):
        """A batch whose first chronological edges have empty neighborhoods
        must produce zeroed (mask-respected) features and a finite loss."""
        trainer = TaserTrainer(engine_graph, engine_config(
            backbone="graphmixer", adaptive_minibatch=False,
            adaptive_neighbor=False, batch_size=8))
        # The very first training batch contains the earliest edges, whose
        # sources have no history at all.
        prepared = trainer.engine._prepare_sync(np.arange(8))
        hop = prepared.minibatch.hops[0]
        empty_rows = ~hop.batch.mask.any(axis=1)
        assert empty_rows.any(), "expected some empty neighborhoods at t ~ 0"
        # Mask respected downstream: sliced features of padded slots are zero.
        if hop.edge_feat is not None:
            assert not hop.edge_feat[~hop.batch.mask].any()
        if hop.neigh_node_feat is not None:
            assert not hop.neigh_node_feat[~hop.batch.mask].any()
        stats = trainer._train_prepared(prepared)
        assert np.isfinite(stats["model_loss"])

    def test_feature_store_does_not_account_padded_slots(self, engine_graph):
        trainer = TaserTrainer(engine_graph, engine_config(
            adaptive_minibatch=False, adaptive_neighbor=False))
        store = trainer.feature_store
        store.reset_stats()
        eids = np.zeros((3, 4), dtype=np.int64)
        mask = np.zeros((3, 4), dtype=bool)
        feats = store.slice_edge_features(eids, mask)
        assert not feats.any()
        assert store.stats.bytes_from_vram == 0
        assert store.stats.bytes_from_ram == 0
        assert store.stats.cache_hits == 0 and store.stats.cache_misses == 0
