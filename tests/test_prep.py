"""Unified batch-prep runtime (``repro.core.prep``).

Two contracts (see docs/ARCHITECTURE.md, "Prep runtime"):

* **bitwise identity** — the deduplicated fused gather produces outputs
  bitwise-identical to the naive per-slot gather, for arbitrarily
  duplicate-heavy neighborhoods, and the loss trajectories of every
  execution path (sync/prefetch/aot engines, ``StreamingTrainer``,
  ``ShardedTrainer``) reproduce exactly under a fixed seed;
* **single cache choke point** — all feature-cache probes and hit/transfer
  accounting happen behind the unique-id dedup, with occurrence-weighted
  hit accounting identical to the pre-dedup stream and the achieved
  redundancy elimination surfaced as ``dedup_ratio``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (PrepPipeline, StreamingTrainer, TaserTrainer,
                        split_warmup)
from repro.device import DynamicFeatureCache, FeatureStore
from repro.distributed import ShardedTrainer

# Reused determinism helpers from the sharded-trainer suite (same graphs,
# same tiny configs, same trajectory extraction).
from test_distributed import _losses, shard_graph, tiny_config  # noqa: F401
from repro.bench.breakdown import loss_trajectory_hash


# ------------------------------------------------------------ dedup gather

class TestDedupGatherBitwise:
    """Property: dedup-gather output == naive gather, bitwise."""

    @settings(max_examples=25, deadline=None)
    @given(rows=st.integers(1, 12), cols=st.integers(1, 8),
           pool=st.integers(1, 6), seed=st.integers(0, 1000),
           with_cache=st.booleans())
    def test_edge_gather_matches_naive_reference(self, small_graph, rows,
                                                 cols, pool, seed, with_cache):
        """Duplicate-heavy edge-id grids: tiny id pools force heavy dedup."""
        rng = np.random.default_rng(seed)
        ids = rng.integers(0, pool, size=(rows, cols))
        mask = rng.random((rows, cols)) < 0.7
        cache = DynamicFeatureCache(small_graph.num_edges, 200, seed=0) \
            if with_cache else None
        store = FeatureStore(small_graph, edge_cache=cache)
        got = store.slice_edge_features(ids, mask)
        # Naive per-slot reference: exactly the pre-dedup gather.
        want = small_graph.edge_feat[ids.reshape(-1)].astype(np.float64)
        want = (want * mask.reshape(-1)[:, None]).reshape(
            rows, cols, small_graph.edge_dim)
        assert np.array_equal(got, want)  # bitwise, not allclose
        stats = store.snapshot()
        valid = int(mask.sum())
        unique_valid = int(np.unique(ids[mask]).size) if valid else 0
        assert stats.ids_requested == valid
        assert stats.ids_unique == unique_valid
        if unique_valid:
            assert stats.dedup_ratio == valid / unique_valid

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(1, 60), pool=st.integers(1, 10),
           seed=st.integers(0, 1000))
    def test_node_gather_matches_naive_reference(self, featured_graph, n,
                                                 pool, seed):
        rng = np.random.default_rng(seed)
        ids = rng.integers(0, pool, size=n)
        store = FeatureStore(featured_graph)
        got = store.slice_node_features(ids)
        want = featured_graph.node_feat[ids].astype(np.float64)
        assert np.array_equal(got, want)
        stats = store.snapshot()
        assert stats.ids_requested == n
        assert stats.ids_unique == int(np.unique(ids).size)

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(0, 200), pool=st.integers(1, 40),
           capacity=st.integers(0, 80), seed=st.integers(0, 500))
    def test_unique_probe_accounts_like_full_stream(self, n, pool, capacity,
                                                    seed):
        """lookup_unique == lookup: same epoch hits/requests/frequencies."""
        rng = np.random.default_rng(seed)
        stream = rng.integers(0, pool, size=n)
        a = DynamicFeatureCache(100, capacity, seed=3)
        b = DynamicFeatureCache(100, capacity, seed=3)
        hits_full = a.lookup(stream)
        unique_ids, counts = np.unique(stream, return_counts=True)
        hits_unique = b.lookup_unique(unique_ids, counts)
        assert a._epoch_hits == b._epoch_hits
        assert a._epoch_requests == b._epoch_requests
        np.testing.assert_array_equal(a.frequency, b.frequency)
        # The unique hit mask expands to the full stream's hit mask.
        inverse = np.searchsorted(unique_ids, stream)
        np.testing.assert_array_equal(hits_full, hits_unique[inverse])

    def test_hit_rate_unchanged_by_dedup(self, small_graph):
        """Occurrence-weighted hits: a duplicated cached id counts each time."""
        cache = DynamicFeatureCache(small_graph.num_edges,
                                    small_graph.num_edges, seed=0)
        cache.cached[:] = True  # everything cached
        store = FeatureStore(small_graph, edge_cache=cache)
        store.slice_edge_features(np.array([3, 3, 3, 5]))
        stats = store.snapshot()
        assert stats.cache_hits == 4          # per occurrence
        assert stats.ids_unique == 2          # per unique id
        assert stats.dedup_ratio == 2.0
        # Bytes/simulated time reflect the unique rows actually moved.
        assert stats.bytes_from_vram == 2 * small_graph.edge_feat.itemsize \
            * small_graph.edge_dim


# -------------------------------------------------------- engine consumers

class TestEngineConsumers:
    @pytest.mark.parametrize("mode", ["sync", "prefetch", "aot"])
    def test_engines_share_the_prep_runtime(self, shard_graph, mode):
        trainer = TaserTrainer(shard_graph, tiny_config(batch_engine=mode))
        assert isinstance(trainer.prep, PrepPipeline)
        stats = trainer.train_epoch()
        # Multi-hop candidate sets are duplicate-heavy: dedup must engage.
        assert stats.dedup_ratio > 1.0
        assert np.isfinite(stats.model_loss)

    @pytest.mark.parametrize("mode", ["prefetch", "aot"])
    def test_engine_trajectories_hash_identical_to_sync(self, shard_graph,
                                                        mode):
        sync = _losses(TaserTrainer(shard_graph, tiny_config()))
        other = _losses(TaserTrainer(shard_graph,
                                     tiny_config(batch_engine=mode)))
        assert loss_trajectory_hash(other) == loss_trajectory_hash(sync)

    def test_eval_goes_through_prep(self, shard_graph):
        trainer = TaserTrainer(shard_graph, tiny_config())
        evaluator = trainer.make_evaluator()
        assert evaluator.prep is trainer.prep
        trainer.feature_store.reset_stats()
        first = evaluator.evaluate("val")
        # Eval slicing is accounted at the same choke point as training.
        stats = trainer.feature_store.snapshot()
        assert stats.ids_requested > stats.ids_unique > 0
        assert trainer.make_evaluator().evaluate("val") == first


# --------------------------------------------------- streaming + sharded

class TestStreamingConsumer:
    def _run(self, graph):
        warm, stream = split_warmup(graph, 600, chunk_size=250, max_chunks=2)
        trainer = StreamingTrainer(
            warm, tiny_config(adaptive_minibatch=False), window_events=500)
        result = trainer.run(stream)
        losses = [[stats.batch_losses for stats in s.train_stats]
                  for s in result.history]
        return loss_trajectory_hash(losses), result

    def test_streaming_reproduces_and_dedups(self, shard_graph):
        hash_a, result = self._run(shard_graph)
        hash_b, _ = self._run(shard_graph)
        assert hash_a == hash_b
        assert all(s.train_stats[0].dedup_ratio > 1.0
                   for s in result.history if s.train_stats)


class TestShardedConsumer:
    def test_w1_hash_matches_single_trainer(self, shard_graph):
        cfg = tiny_config()
        reference = loss_trajectory_hash(_losses(TaserTrainer(shard_graph, cfg)))
        with ShardedTrainer(shard_graph, cfg, num_workers=1,
                            backend="serial") as sharded:
            assert loss_trajectory_hash(_losses(sharded)) == reference

    def test_w2_hash_reproducible_with_dedup(self, shard_graph):
        cfg = tiny_config()
        hashes = []
        for _ in range(2):
            with ShardedTrainer(shard_graph, cfg, num_workers=2,
                                backend="thread") as sharded:
                hashes.append(loss_trajectory_hash(_losses(sharded)))
                per_shard = sharded.history[-1].per_shard
                assert all(s["dedup_ratio"] > 1.0 for s in per_shard)
        assert hashes[0] == hashes[1]


# -------------------------------------------------------------- config fold

class TestConfigFold:
    def test_single_config_module_shim_removed(self):
        """repro.core.config is the only config module; the deprecated
        repro.utils.config re-export shim is gone."""
        import importlib

        from repro.core import asdict_shallow as core_level
        from repro.core.config import asdict_shallow as canonical
        assert canonical is core_level
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.utils.config")
        import repro.utils as utils
        assert not hasattr(utils, "asdict_shallow")
