"""Array-backend runtime: registry, workspace arena, bitwise equality.

Three layers of coverage for ``repro.tensor.backend``:

* mechanics — the registry/env resolution, config/CLI validation with
  actionable errors, and the workspace arena's take/scratch/reset protocol
  (including thread isolation and the serial-pool arena-scope contract);
* kernel equality — hypothesis property tests asserting every fused kernel's
  forward output *and* gradients are bitwise-equal to the reference backend
  across shapes and dtypes, plus ``gradcheck`` runs of each fused kernel;
* trainer equality — full training runs (sync engine, 2 epochs) under both
  backends must produce identical loss-trajectory hashes and MRR, through
  the single-worker, sharded and streaming paths.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.bench.breakdown import loss_trajectory_hash
from repro.core import TaserConfig, TaserTrainer
from repro.tensor import Tensor, gradcheck
from repro.tensor import functional as F
from repro.tensor.backend import (FusedBackend, WorkspaceArena,
                                  available_backends, get_backend,
                                  resolve_backend_name, set_backend,
                                  use_backend)

finite_floats = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False,
                          allow_infinity=False)


def small_array(max_side=4, dims=st.integers(1, 3), dtype=np.float64):
    return dims.flatmap(
        lambda nd: st.tuples(*([st.integers(1, max_side)] * nd)).flatmap(
            lambda shape: arrays(dtype, shape, elements=finite_floats)))


# ----------------------------------------------------------------- registry

class TestRegistry:
    def test_backends_registered(self):
        assert set(available_backends()) >= {"reference", "fused"}

    def test_resolution_order(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend_name(None) == "reference"
        assert resolve_backend_name("fused") == "fused"
        monkeypatch.setenv("REPRO_BACKEND", "fused")
        assert resolve_backend_name(None) == "fused"
        # explicit beats environment
        assert resolve_backend_name("reference") == "reference"

    def test_unknown_name_lists_backends(self, monkeypatch):
        with pytest.raises(ValueError, match="reference"):
            resolve_backend_name("cuda")
        monkeypatch.setenv("REPRO_BACKEND", "warp9")
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            resolve_backend_name(None)

    def test_set_backend_is_singleton_per_name(self):
        previous = get_backend()
        try:
            assert set_backend("fused") is set_backend("fused")
        finally:
            set_backend(previous.name)

    def test_use_backend_restores(self):
        before = get_backend().name
        with use_backend("fused") as backend:
            assert backend.name == "fused"
            assert get_backend() is backend
        assert get_backend().name == before

    def test_config_validates_backend(self, monkeypatch):
        with pytest.raises(ValueError, match="registered backends"):
            TaserConfig(array_backend="gpu0")
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with pytest.raises(ValueError, match="registered backends"):
            TaserConfig()
        monkeypatch.setenv("REPRO_BACKEND", "fused")
        assert TaserConfig().resolved_array_backend == "fused"
        assert TaserConfig(array_backend="reference").resolved_array_backend \
            == "reference"

    def test_cli_flag_validates_at_parse_time(self, capsys):
        from repro.cli import build_parser
        parser = build_parser()
        assert parser.parse_args(["--backend", "fused"]).backend == "fused"
        with pytest.raises(SystemExit) as exc:
            parser.parse_args(["--backend", "tpu"])
        assert exc.value.code == 2
        assert "registered backends" in capsys.readouterr().err

    def test_cli_env_validated_at_parse_time(self, monkeypatch, capsys):
        from repro.cli import main
        monkeypatch.setenv("REPRO_BACKEND", "nope")
        with pytest.raises(SystemExit) as exc:
            main(["--epochs", "1"])
        assert exc.value.code == 2
        assert "registered backends" in capsys.readouterr().err


# ------------------------------------------------------------------- arena

class TestWorkspaceArena:
    def test_take_reuses_only_after_reset(self):
        arena = WorkspaceArena()
        a = arena.take((4, 3))
        b = arena.take((4, 3))
        assert a is not b, "buffers handed out twice within a batch"
        arena.reset()
        c = arena.take((4, 3))
        assert c is a or c is b
        stats = arena.stats()
        assert stats["workspace_allocated"] == 2
        assert stats["workspace_reused"] == 1
        assert stats["workspace_bytes_reused"] == c.nbytes
        assert stats["workspace_resets"] == 1

    def test_scratch_returns_immediately(self):
        arena = WorkspaceArena()
        s = arena.scratch((5,))
        arena.give_back(s)
        assert arena.take((5,)) is s

    def test_shapes_and_dtypes_do_not_mix(self):
        arena = WorkspaceArena()
        a = arena.take((2, 2))
        b = arena.take((4,))
        arena.reset()
        assert arena.take((4,)) is b
        assert arena.take((2, 2)) is a
        assert arena.take((2, 2), dtype=np.float32) is not a

    def test_fused_arenas_are_thread_local(self):
        backend = FusedBackend()
        seen = {}

        def worker(key):
            seen[key] = backend.arena

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen[0] is not seen[1]
        assert backend.arena is not seen[0]

    def test_arena_scope_isolates_owners(self):
        """The serial-pool contract: two owners on one thread never recycle
        each other's buffers."""
        backend = FusedBackend()
        arena_a, arena_b = backend.new_arena(), backend.new_arena()
        with backend.arena_scope(arena_a):
            backend.begin_batch()
            held = backend.add(np.ones(3), np.ones(3))
        with backend.arena_scope(arena_b):
            backend.begin_batch()  # resets B only
            backend.add(np.full(3, 9.0), np.zeros(3))
        assert np.array_equal(held, np.full(3, 2.0)), \
            "owner B's batch boundary recycled owner A's live buffer"

    def test_free_list_bytes_are_capped(self):
        import repro.tensor.backend as backend_mod

        arena = WorkspaceArena()
        cap = backend_mod.MAX_FREE_BYTES
        big = (cap // 8 // 4 + 1,)  # four of these exceed the byte cap
        for _ in range(6):
            arena.take(big)
        arena.reset()
        stats = arena.stats()
        assert stats["workspace_dropped"] >= 2, \
            "arena retained more than MAX_FREE_BYTES of free buffers"

    def test_mixed_backend_trainers_coexist(self, small_graph):
        """Constructing a second trainer with a different backend must not
        silently switch execution for the first (the active backend is
        re-installed at every batch boundary)."""
        def config(backend):
            return TaserConfig(backbone="graphmixer", hidden_dim=8, time_dim=4,
                               num_neighbors=3, num_candidates=3, batch_size=64,
                               adaptive_minibatch=False, adaptive_neighbor=False,
                               max_batches_per_epoch=3, dropout=0.0,
                               eval_max_edges=20, seed=0, array_backend=backend)

        fused_trainer = TaserTrainer(small_graph, config("fused"))
        ref_trainer = TaserTrainer(small_graph, config("reference"))
        # The reference trainer was built last, so it installed its backend —
        # yet the fused trainer's epoch must still run fused kernels.
        fused_stats = fused_trainer.train_epoch()
        ref_stats = ref_trainer.train_epoch()
        assert fused_stats.array_backend == "fused"
        assert fused_stats.workspace_allocations_saved > 0
        assert ref_stats.array_backend == "reference"
        assert ref_stats.workspace_allocations_saved == 0
        assert fused_stats.batch_losses == ref_stats.batch_losses

    def test_trainer_reports_workspace_savings(self, small_graph):
        config = TaserConfig(backbone="graphmixer", hidden_dim=8, time_dim=4,
                             num_neighbors=3, num_candidates=3, batch_size=64,
                             adaptive_minibatch=False, adaptive_neighbor=False,
                             max_batches_per_epoch=3, dropout=0.0,
                             eval_max_edges=20, seed=0, array_backend="fused")
        trainer = TaserTrainer(small_graph, config)
        stats = trainer.train_epoch()
        assert stats.array_backend == "fused"
        assert stats.workspace_allocations_saved > 0
        assert stats.workspace_bytes_saved > 0
        ref = TaserTrainer(small_graph,
                           TaserConfig(**{**config.__dict__,
                                          "array_backend": "reference"}))
        ref_stats = ref.train_epoch()
        assert ref_stats.array_backend == "reference"
        assert ref_stats.workspace_allocations_saved == 0


# --------------------------------------------------- kernel bitwise equality

def _both(fn):
    """Run ``fn`` under each backend and return the two results."""
    results = []
    for name in ("reference", "fused"):
        with use_backend(name) as backend:
            backend.begin_batch()
            results.append(fn())
    return results


def _assert_bitwise(ref, fused):
    assert len(ref) == len(fused)
    for r, f in zip(ref, fused):
        r, f = np.asarray(r), np.asarray(f)
        assert r.dtype == f.dtype
        assert np.array_equal(r, f), f"max diff {np.abs(r - f).max()}"


class TestKernelEquality:
    @settings(max_examples=25, deadline=None)
    @given(small_array(), st.sampled_from([-1, 0]))
    def test_softmax_forward_backward(self, data, axis):
        def run():
            x = Tensor(data.copy(), requires_grad=True)
            out = x.softmax(axis=axis)
            out.sum().backward()
            return out.data.copy(), x.grad.copy()
        _assert_bitwise(*_both(run))

    @settings(max_examples=25, deadline=None)
    @given(small_array())
    def test_log_softmax_forward_backward(self, data):
        def run():
            x = Tensor(data.copy(), requires_grad=True)
            out = x.log_softmax(axis=-1)
            (out * out).sum().backward()
            return out.data.copy(), x.grad.copy()
        _assert_bitwise(*_both(run))

    @settings(max_examples=25, deadline=None)
    @given(small_array())
    def test_unary_kernels(self, data):
        def run():
            x = Tensor(data.copy(), requires_grad=True)
            y = (x.gelu() + x.sigmoid() + x.tanh() + x.relu()
                 + x.leaky_relu() + x.cos() + x.sin() + x.exp())
            y.sum().backward()
            return y.data.copy(), x.grad.copy()
        _assert_bitwise(*_both(run))

    @settings(max_examples=25, deadline=None)
    @given(small_array(dims=st.integers(2, 3)))
    def test_layer_norm(self, data):
        dim = data.shape[-1]
        w = np.linspace(0.5, 1.5, dim)
        b = np.linspace(-0.1, 0.1, dim)

        def run():
            x = Tensor(data.copy(), requires_grad=True)
            weight = Tensor(w.copy(), requires_grad=True)
            bias = Tensor(b.copy(), requires_grad=True)
            out = F.layer_norm(x, weight, bias)
            out.sum().backward()
            return (out.data.copy(), x.grad.copy(), weight.grad.copy(),
                    bias.grad.copy())
        _assert_bitwise(*_both(run))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 5), st.integers(1, 4), st.integers(1, 4),
           st.integers(0, 2 ** 31 - 1))
    def test_matmul_and_linear(self, n, k, m, seed):
        rng = np.random.default_rng(seed)
        a_np = rng.standard_normal((n, k))
        b_np = rng.standard_normal((k, m))

        def run():
            a = Tensor(a_np.copy(), requires_grad=True)
            b = Tensor(b_np.copy(), requires_grad=True)
            out = a @ b
            out.sum().backward()
            return out.data.copy(), a.grad.copy(), b.grad.copy()
        _assert_bitwise(*_both(run))

    @settings(max_examples=25, deadline=None)
    @given(arrays(np.float64, (3, 4),
                  elements=st.floats(min_value=0.0, max_value=100.0)),
           st.integers(1, 16))
    def test_time_encodings(self, delta, dim):
        from repro.encoders import FixedTimeEncoder, LearnableTimeEncoder

        def run():
            fixed = FixedTimeEncoder(dim)
            rng = np.random.default_rng(0)
            learnable = LearnableTimeEncoder(dim, rng=rng)
            out_f = fixed(delta.copy())
            out_l = learnable(delta.copy())
            out_l.sum().backward()
            return (out_f.data.copy(), out_l.data.copy(),
                    learnable.w.grad.copy(), learnable.b.grad.copy())
        _assert_bitwise(*_both(run))

    @settings(max_examples=15, deadline=None)
    @given(small_array(dtype=np.float32))
    def test_float32_inputs_fall_back_identically(self, data):
        """Non-float64 tensors take the fallback path and still match."""
        def run():
            x = Tensor(data.copy(), dtype=np.float32)
            return ((x * 2.0 + x).data.copy(),
                    Tensor(data.copy()).sigmoid().data.copy())
        _assert_bitwise(*_both(run))

    @settings(max_examples=15, deadline=None)
    @given(small_array(dims=st.integers(2, 2)))
    def test_non_contiguous_layouts_match(self, data):
        """Transposed (non-C-contiguous) operands must not diverge: the
        fused backend falls back so downstream pairwise-summed reductions
        see the same memory layout as the reference."""
        def run():
            x = Tensor(data.copy(), requires_grad=True)
            out = x.transpose().gelu() @ Tensor(np.ones((data.shape[0], 2)))
            out.sum().backward()
            return out.data.copy(), x.grad.copy()
        _assert_bitwise(*_both(run))

    def test_masked_softmax_and_bce(self):
        rng = np.random.default_rng(5)
        scores = rng.standard_normal((6, 4))
        mask = rng.random((6, 4)) > 0.3
        logits_np = rng.standard_normal(8)
        targets = (rng.random(8) > 0.5).astype(np.float64)

        def run():
            s = Tensor(scores.copy(), requires_grad=True)
            out = F.masked_softmax(s, mask)
            logits = Tensor(logits_np.copy(), requires_grad=True)
            loss = F.binary_cross_entropy_with_logits(logits, Tensor(targets))
            (out.sum() + loss).backward()
            return (out.data.copy(), loss.data.copy(), s.grad.copy(),
                    logits.grad.copy())
        _assert_bitwise(*_both(run))


# ------------------------------------------------------- fused gradcheck

class TestFusedGradcheck:
    """Each fused kernel's backward rule against a numerical Jacobian."""

    def _check(self, fn, *shapes, seed=0):
        rng = np.random.default_rng(seed)
        with use_backend("fused"):
            inputs = [Tensor(rng.standard_normal(s), requires_grad=True)
                      for s in shapes]
            assert gradcheck(fn, inputs, atol=1e-3, rtol=1e-2)

    def test_softmax(self):
        self._check(lambda x: x.softmax(-1).sum(), (3, 4))

    def test_log_softmax(self):
        self._check(lambda x: (x.log_softmax(-1) * x.log_softmax(-1)).sum(),
                    (3, 4))

    def test_gelu(self):
        self._check(lambda x: x.gelu().sum(), (4, 3))

    def test_sigmoid_tanh(self):
        self._check(lambda x: (x.sigmoid() * x.tanh()).sum(), (3, 3))

    def test_layer_norm(self):
        self._check(lambda x, w, b: F.layer_norm(x, w, b).sum(),
                    (4, 5), (5,), (5,))

    def test_matmul(self):
        self._check(lambda a, b: (a @ b).sum(), (3, 4), (4, 2))

    def test_learnable_time_encoding(self):
        rng = np.random.default_rng(3)
        delta = np.abs(rng.standard_normal((3, 2)))
        with use_backend("fused"):
            from repro.encoders import LearnableTimeEncoder
            enc = LearnableTimeEncoder(4, rng=rng)
            # gradcheck perturbs the parameter arrays in place, so a lambda
            # that closes over the encoder sees every perturbation.
            assert gradcheck(lambda w, b: enc(delta).sum(),
                             [enc.w, enc.b], atol=1e-3, rtol=1e-2)


# --------------------------------------------------- trainer-level equality

def _train(graph, backend, **overrides):
    kwargs = dict(backbone="tgat", hidden_dim=16, time_dim=8,
                  num_neighbors=4, num_candidates=8, batch_size=100,
                  epochs=2, max_batches_per_epoch=4, dropout=0.0,
                  adaptive_minibatch=True, adaptive_neighbor=True,
                  batch_engine="sync", eval_max_edges=40, seed=0,
                  array_backend=backend)
    kwargs.update(overrides)
    config = TaserConfig(**kwargs)
    trainer = TaserTrainer(graph, config)
    result = trainer.fit(epochs=2)
    losses = [list(s.batch_losses) for s in result.history]
    return loss_trajectory_hash(losses), result


class TestTrainerEquality:
    def test_trajectory_hash_and_mrr_match(self, small_graph):
        ref_hash, ref = _train(small_graph, "reference")
        fused_hash, fused = _train(small_graph, "fused")
        assert ref_hash == fused_hash
        assert ref.test_mrr == fused.test_mrr
        assert ref.test_metrics == fused.test_metrics
        assert all(s.workspace_allocations_saved > 0 for s in fused.history)

    def test_graphmixer_trajectory_matches(self, small_graph):
        ref_hash, _ = _train(small_graph, "reference", backbone="graphmixer",
                             adaptive_minibatch=False)
        fused_hash, _ = _train(small_graph, "fused", backbone="graphmixer",
                               adaptive_minibatch=False)
        assert ref_hash == fused_hash

    def test_sharded_thread_pool_matches_reference(self, small_graph):
        from repro.distributed import ShardedTrainer

        hashes = {}
        for backend in ("reference", "fused"):
            config = TaserConfig(backbone="graphmixer", hidden_dim=8,
                                 time_dim=4, num_neighbors=3, num_candidates=3,
                                 batch_size=64, adaptive_minibatch=False,
                                 adaptive_neighbor=False, dropout=0.0,
                                 max_batches_per_epoch=3, eval_max_edges=20,
                                 seed=0, array_backend=backend)
            with ShardedTrainer(small_graph, config, num_workers=2,
                                backend="thread") as sharded:
                sharded.train_epoch()
                hashes[backend] = loss_trajectory_hash(
                    [list(s.batch_losses) for s in sharded.history])
                if backend == "fused":
                    assert sharded.history[-1].workspace_allocations_saved > 0
        assert hashes["reference"] == hashes["fused"]

    def test_sharded_serial_pool_matches_reference(self, small_graph):
        """Serial pool: replicas share one thread, exercising the
        per-trainer arena-scope isolation."""
        from repro.distributed import ShardedTrainer

        hashes = {}
        for backend in ("reference", "fused"):
            config = TaserConfig(backbone="graphmixer", hidden_dim=8,
                                 time_dim=4, num_neighbors=3, num_candidates=3,
                                 batch_size=64, adaptive_minibatch=False,
                                 adaptive_neighbor=True, dropout=0.0,
                                 max_batches_per_epoch=3, eval_max_edges=20,
                                 seed=0, array_backend=backend)
            with ShardedTrainer(small_graph, config, num_workers=2,
                                backend="serial") as sharded:
                sharded.train_epoch()
                hashes[backend] = loss_trajectory_hash(
                    [list(s.batch_losses) for s in sharded.history])
        assert hashes["reference"] == hashes["fused"]
