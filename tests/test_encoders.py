"""Tests for the time / frequency / identity encoders."""

import numpy as np
import pytest

from repro.encoders import (LearnableTimeEncoder, FixedTimeEncoder, FrequencyEncoder,
                            IdentityEncoder, sort_by_recency)
from repro.tensor import Tensor


class TestTimeEncoders:
    def test_learnable_shapes_and_range(self):
        enc = LearnableTimeEncoder(8, rng=np.random.default_rng(0))
        out = enc(np.array([[0.0, 1.0, 100.0], [5.0, 2.0, 3.0]]))
        assert out.shape == (2, 3, 8)
        assert np.all(np.abs(out.data) <= 1.0)

    def test_learnable_zero_delta_is_cos_bias(self):
        enc = LearnableTimeEncoder(4, rng=np.random.default_rng(0))
        out = enc(np.zeros(3))
        assert np.allclose(out.data, np.cos(enc.b.data), atol=1e-12)

    def test_learnable_gradients_flow(self):
        enc = LearnableTimeEncoder(6, rng=np.random.default_rng(1))
        out = enc(np.linspace(0, 10, 5))
        out.sum().backward()
        assert enc.w.grad is not None and np.any(enc.w.grad != 0)
        assert enc.b.grad is not None

    def test_fixed_no_parameters(self):
        enc = FixedTimeEncoder(8)
        assert enc.parameters() == []

    def test_fixed_frequencies_decay(self):
        enc = FixedTimeEncoder(16)
        assert np.all(np.diff(enc.omega) <= 0)
        assert enc.omega[0] == pytest.approx(1.0)

    def test_fixed_distinguishes_time_scales(self):
        enc = FixedTimeEncoder(16)
        recent = enc(np.array([1.0])).data
        old = enc(np.array([1000.0])).data
        assert not np.allclose(recent, old)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            LearnableTimeEncoder(0)
        with pytest.raises(ValueError):
            FixedTimeEncoder(-1)

    def test_accepts_tensor_input(self):
        enc = FixedTimeEncoder(4)
        out = enc(Tensor(np.ones((2, 3))))
        assert out.shape == (2, 3, 4)


class TestFrequencyEncoder:
    def test_shapes(self):
        enc = FrequencyEncoder(10)
        out = enc(np.arange(12).reshape(3, 4))
        assert out.shape == (3, 4, 10)

    def test_alternating_sin_cos(self):
        enc = FrequencyEncoder(6)
        out = enc(np.array([3.0])).data[0]
        angles = 3.0 * enc.inv_wavelength
        assert np.allclose(out[0], np.sin(angles[0]))
        assert np.allclose(out[1], np.cos(angles[1]))

    def test_distinguishes_frequencies(self):
        enc = FrequencyEncoder(8)
        assert not np.allclose(enc(np.array([1])).data, enc(np.array([7])).data)

    def test_bounded(self):
        enc = FrequencyEncoder(8)
        out = enc(np.arange(100)).data
        assert np.all(np.abs(out) <= 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FrequencyEncoder(0)


class TestIdentityEncoder:
    def test_pairwise_indicator(self):
        enc = IdentityEncoder(4)
        nodes = np.array([[7, 7, 3, 9]])
        out = enc(nodes).data[0]
        assert out[0, 1] == 1 and out[1, 0] == 1
        assert out[0, 2] == 0
        assert np.allclose(np.diag(out), 1)

    def test_mask_zeroes_padded(self):
        enc = IdentityEncoder(3)
        nodes = np.array([[5, 5, 0]])
        mask = np.array([[True, True, False]])
        out = enc(nodes, mask).data[0]
        assert np.allclose(out[2], 0)
        assert np.allclose(out[:, 2], 0)

    def test_budget_validation(self):
        enc = IdentityEncoder(4)
        with pytest.raises(ValueError):
            enc(np.zeros((2, 3), dtype=int))
        with pytest.raises(ValueError):
            IdentityEncoder(0)

    def test_sort_by_recency(self):
        times = np.array([[1.0, 5.0, 3.0]])
        nodes = np.array([[10, 20, 30]])
        mask = np.array([[True, True, True]])
        order = sort_by_recency(nodes, times, mask)
        assert order[0].tolist() == [1, 2, 0]

    def test_sort_by_recency_pushes_padding_last(self):
        times = np.array([[9.0, 5.0, 3.0]])
        mask = np.array([[False, True, True]])
        order = sort_by_recency(np.zeros((1, 3), dtype=int), times, mask)
        assert order[0, -1] == 0
