"""Tests for the streaming subsystem: incremental T-CSR, in-place event
ingestion, event streams and the online prequential train/eval loop."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import (EventChunk, EventStream, StreamingTrainer, TaserConfig,
                        split_warmup)
from repro.device.cache import DynamicFeatureCache
from repro.graph import (DATASET_NAMES, CTDGConfig, StreamingTCSR,
                         TemporalGraph, build_tcsr, generate_ctdg,
                         generate_drift_sequence, load_dataset)


def assert_tcsr_equal(a, b):
    for name in ("indptr", "indices", "eid", "ts"):
        left, right = getattr(a, name), getattr(b, name)
        assert left.dtype == right.dtype, name
        assert np.array_equal(left, right), f"{name} differs"


def stream_config(**overrides):
    base = dict(backbone="graphmixer", adaptive_minibatch=False,
                adaptive_neighbor=False, hidden_dim=8, time_dim=4,
                num_neighbors=3, num_candidates=6, batch_size=64,
                eval_negatives=10, seed=0)
    base.update(overrides)
    return TaserConfig(**base)


class TestStreamingTCSR:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_append_matches_rebuild_on_every_preset(self, name):
        """Property: chunked incremental appends produce a T-CSR bitwise-
        identical to a one-shot build, for every dataset preset."""
        graph = load_dataset(name, scale=0.05, seed=3)
        reference = build_tcsr(graph)
        stcsr = StreamingTCSR(graph.num_nodes, initial_capacity=8)
        step = 61  # deliberately not a divisor of the event count
        for lo in range(0, graph.num_edges, step):
            hi = min(lo + step, graph.num_edges)
            stcsr.append(graph.src[lo:hi], graph.dst[lo:hi], graph.ts[lo:hi])
        assert_tcsr_equal(stcsr.snapshot(), reference)
        stcsr.snapshot().check_invariants()
        assert stcsr.num_events == graph.num_edges
        assert stcsr.num_entries == 2 * graph.num_edges

    def test_duplicate_timestamps_keep_canonical_tie_break(self):
        """Equal-timestamp events must land in event order with the forward
        half-edge before the reverse one — the canonical order both the
        batch build and the stream produce."""
        rng = np.random.default_rng(5)
        n = 400
        src = rng.integers(0, 15, size=n)
        dst = rng.integers(0, 15, size=n)
        ts = np.sort(rng.integers(0, 25, size=n)).astype(np.float64)
        graph = TemporalGraph(src=src, dst=dst, ts=ts, num_nodes=15)
        stcsr = StreamingTCSR(15, initial_capacity=4)
        for lo in range(0, n, 17):
            stcsr.append(src[lo:lo + 17], dst[lo:lo + 17], ts[lo:lo + 17])
        assert_tcsr_equal(stcsr.snapshot(), build_tcsr(graph))

    def test_single_event_appends(self, small_graph):
        g = small_graph.select_events(np.arange(200))
        stcsr = StreamingTCSR(g.num_nodes, initial_capacity=1)
        for i in range(g.num_edges):
            stcsr.append(g.src[i:i + 1], g.dst[i:i + 1], g.ts[i:i + 1])
        assert_tcsr_equal(stcsr.snapshot(), build_tcsr(g))

    def test_from_graph_equals_rebuild(self, small_graph):
        assert_tcsr_equal(StreamingTCSR.from_graph(small_graph).snapshot(),
                          build_tcsr(small_graph))

    def test_no_reverse_mode(self, small_graph):
        stcsr = StreamingTCSR(small_graph.num_nodes, add_reverse=False)
        stcsr.append(small_graph.src, small_graph.dst, small_graph.ts)
        assert_tcsr_equal(stcsr.snapshot(),
                          build_tcsr(small_graph, add_reverse=False))

    def test_snapshot_cached_until_next_append(self, small_graph):
        stcsr = StreamingTCSR.from_graph(small_graph)
        first = stcsr.snapshot()
        assert stcsr.snapshot() is first
        stcsr.append(np.array([0]), np.array([1]),
                     np.array([small_graph.ts[-1] + 1.0]))
        assert stcsr.snapshot() is not first

    def test_compact_preserves_content_and_tightens_heap(self, small_graph):
        stcsr = StreamingTCSR(small_graph.num_nodes, initial_capacity=4)
        for lo in range(0, small_graph.num_edges, 23):
            hi = min(lo + 23, small_graph.num_edges)
            stcsr.append(small_graph.src[lo:hi], small_graph.dst[lo:hi],
                         small_graph.ts[lo:hi])
        before = stcsr.snapshot()
        heap_before = stcsr._heap_end
        stcsr.compact()
        assert stcsr._heap_end <= heap_before
        assert_tcsr_equal(stcsr.snapshot(), before)
        # Appends keep working after compaction.
        stcsr.append(np.array([1]), np.array([2]),
                     np.array([small_graph.ts[-1] + 1.0]))
        assert stcsr.num_events == small_graph.num_edges + 1

    def test_rejects_out_of_order_and_out_of_range(self):
        stcsr = StreamingTCSR(4)
        stcsr.append(np.array([0]), np.array([1]), np.array([5.0]))
        with pytest.raises(ValueError, match="precede"):
            stcsr.append(np.array([1]), np.array([2]), np.array([4.0]))
        with pytest.raises(ValueError, match="chronologically"):
            stcsr.append(np.array([1, 2]), np.array([2, 3]),
                         np.array([7.0, 6.0]))
        with pytest.raises(ValueError, match="out of range"):
            stcsr.append(np.array([9]), np.array([1]), np.array([8.0]))
        # Failed appends must not corrupt the structure.
        assert stcsr.num_events == 1
        stcsr.snapshot().check_invariants()


class TestAppendEvents:
    def test_appending_in_chunks_equals_one_shot_generation(self, small_graph):
        prefix = small_graph.select_events(np.arange(300))
        for lo in range(300, small_graph.num_edges, 101):
            hi = min(lo + 101, small_graph.num_edges)
            prefix.append_events(small_graph.src[lo:hi], small_graph.dst[lo:hi],
                                 small_graph.ts[lo:hi],
                                 small_graph.edge_feat[lo:hi])
        assert prefix.num_edges == small_graph.num_edges
        assert np.array_equal(prefix.src, small_graph.src)
        assert np.array_equal(prefix.dst, small_graph.dst)
        assert np.array_equal(prefix.ts, small_graph.ts)
        assert np.array_equal(prefix.edge_feat, small_graph.edge_feat)
        assert prefix.is_chronological

    def test_views_track_growth(self):
        g = TemporalGraph(src=np.array([0]), dst=np.array([1]),
                          ts=np.array([1.0]), num_nodes=3)
        for i in range(2, 40):
            g.append_events(np.array([0]), np.array([2]), np.array([float(i)]))
        assert g.num_edges == 39
        assert g.ts[-1] == 39.0
        assert g.src.base is not None  # a view into the growth buffer

    def test_validation(self, small_graph):
        g = small_graph.select_events(np.arange(50))
        t = float(g.ts[-1])
        with pytest.raises(ValueError, match="out of range"):
            g.append_events(np.array([g.num_nodes]), np.array([0]),
                            np.array([t + 1]), np.zeros((1, g.edge_dim)))
        with pytest.raises(ValueError, match="precede"):
            g.append_events(np.array([0]), np.array([1]), np.array([t - 100]),
                            np.zeros((1, g.edge_dim)))
        with pytest.raises(ValueError, match="edge features"):
            g.append_events(np.array([0]), np.array([1]), np.array([t + 1]))
        with pytest.raises(ValueError, match="shape"):
            g.append_events(np.array([0]), np.array([1]), np.array([t + 1]),
                            np.zeros((1, g.edge_dim + 3)))
        assert g.num_edges == 50  # nothing was partially applied

    def test_empty_chunk_is_a_noop(self, small_graph):
        g = small_graph.select_events(np.arange(10))
        g.append_events(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
                        np.empty(0), np.empty((0, g.edge_dim), dtype=np.float32))
        assert g.num_edges == 10


class TestCacheGrowth:
    def test_grow_extends_universe_and_keeps_content(self):
        cache = DynamicFeatureCache(num_edges=100, capacity=20, seed=0)
        cached_before = cache.cached_ids()
        cache.grow(150, capacity=30)
        assert cache.num_edges == 150
        assert cache.capacity == 30
        assert np.array_equal(cache.cached_ids(), cached_before)
        assert cache.frequency.shape == (150,)
        # New ids are lookupable immediately (miss, counted).
        hits = cache.lookup(np.array([149, 120]))
        assert not hits.any()

    def test_grow_rejects_shrinking(self):
        cache = DynamicFeatureCache(num_edges=100, capacity=20, seed=0)
        with pytest.raises(ValueError, match="shrink"):
            cache.grow(50)
        with pytest.raises(ValueError, match="shrink"):
            cache.grow(100, capacity=10)

    def test_rejected_grow_leaves_cache_consistent(self):
        """A failed grow must not mutate anything (no half-grown state)."""
        cache = DynamicFeatureCache(num_edges=100, capacity=20, seed=0)
        with pytest.raises(ValueError, match="exceed num_edges"):
            cache.grow(150, capacity=200)
        assert cache.num_edges == 100
        assert cache.capacity == 20
        assert cache.cached.shape == (100,)
        assert cache.frequency.shape == (100,)
        cache.lookup(np.array([99]))  # still fully functional


class TestEventStream:
    def test_covers_all_events_once(self, small_graph):
        stream = EventStream(small_graph, chunk_size=70, start=100)
        chunks = list(stream)
        assert sum(c.num_events for c in chunks) == small_graph.num_edges - 100
        assert stream.num_chunks == len(chunks)
        src = np.concatenate([c.src for c in chunks])
        assert np.array_equal(src, small_graph.src[100:])
        assert all(c.index == i for i, c in enumerate(chunks))

    def test_max_chunks_caps_iteration(self, small_graph):
        stream = EventStream(small_graph, chunk_size=50, max_chunks=3)
        assert len(list(stream)) == 3
        assert stream.num_chunks == 3

    def test_split_warmup(self, small_graph):
        warm, stream = split_warmup(small_graph, warmup_events=200, chunk_size=64)
        assert warm.num_edges == 200
        assert stream.num_events == small_graph.num_edges - 200
        # The warmup graph owns its arrays (safe to mutate by ingestion).
        warm.append_events(np.array([0]), np.array([1]),
                           np.array([float(warm.ts[-1]) + 1.0]),
                           np.zeros((1, warm.edge_dim), dtype=np.float32))
        assert small_graph.num_edges == 1200

    def test_validation(self, small_graph):
        with pytest.raises(ValueError, match="chunk_size"):
            EventStream(small_graph, chunk_size=0)
        with pytest.raises(ValueError, match="rate"):
            EventStream(small_graph, rate=-1.0)
        with pytest.raises(ValueError, match="warmup_events"):
            split_warmup(small_graph, warmup_events=0)


class TestStreamingTrainer:
    def _run(self, config, graph, warmup=240, chunk=80, window=200):
        warm, stream = split_warmup(graph, warmup_events=warmup, chunk_size=chunk)
        trainer = StreamingTrainer(warm, config, window_events=window,
                                   prequential_max_events=30)
        trainer.train_epoch()
        result = trainer.run(stream)
        losses = [loss for s in result.history for es in s.train_stats
                  for loss in es.batch_losses]
        return trainer, result, losses

    def test_online_loop_ingests_everything(self, small_graph):
        trainer, result, losses = self._run(stream_config(), small_graph)
        assert trainer.graph.num_edges == small_graph.num_edges
        assert result.events_ingested == small_graph.num_edges - 240
        assert result.batches_trained == len(losses) > 0
        assert all(0.0 <= m <= 1.0 for m in result.mrr_over_time)
        assert 0.0 <= result.prequential_mrr <= 1.0

    def test_incremental_tcsr_stays_identical_to_rebuild(self, small_graph):
        """The key graph-state invariant: after arbitrary ingestion the
        incrementally maintained T-CSR equals a batch rebuild."""
        trainer, _, _ = self._run(stream_config(), small_graph)
        assert_tcsr_equal(trainer.stcsr.snapshot(), build_tcsr(trainer.graph))

    def test_prequential_trajectory_reproducible_and_engine_invariant(self, small_graph):
        """Property: fixed seed => identical prequential MRR and batch losses,
        across repeated runs and across the sync/prefetch engines."""
        cfg = stream_config()
        _, r1, l1 = self._run(cfg, small_graph)
        _, r2, l2 = self._run(stream_config(), small_graph)
        _, r3, l3 = self._run(stream_config(batch_engine="prefetch"), small_graph)
        assert r1.mrr_over_time == r2.mrr_over_time == r3.mrr_over_time
        assert l1 == l2 == l3

    def test_cache_follows_the_event_log(self, small_graph):
        cfg = stream_config(cache_ratio=0.2)
        trainer, _, _ = self._run(cfg, small_graph)
        assert trainer.cache is not None
        assert trainer.cache.num_edges == trainer.graph.num_edges
        expected = int(round(cfg.cache_ratio * trainer.graph.num_edges))
        assert trainer.cache.capacity >= expected

    def test_drift_sequence_streams(self):
        cfg = CTDGConfig(num_src=40, num_dst=20, num_events=200, edge_dim=8,
                         seed=9, name="drift-test")
        drift = generate_drift_sequence(cfg, num_phases=3)
        assert drift.num_edges == 600
        assert drift.is_chronological
        assert list(drift.meta["phase_boundaries"]) == [200, 400]
        assert len(drift.meta["phases"]) == 3
        trainer, result, _ = self._run(stream_config(eval_negatives=5), drift,
                                       warmup=150, chunk=90, window=150)
        assert trainer.graph.num_edges == 600
        assert len(result.history) == 5

    def test_rejects_incompatible_configs(self, small_graph):
        warm, _ = split_warmup(small_graph, warmup_events=200)
        with pytest.raises(ValueError, match="adaptive_minibatch"):
            StreamingTrainer(warm, stream_config(adaptive_minibatch=True))
        with pytest.raises(ValueError, match="'sync' or 'prefetch'"):
            StreamingTrainer(warm, stream_config(batch_engine="aot"))
        with pytest.raises(ValueError, match="window_events"):
            StreamingTrainer(warm, stream_config(), window_events=0)

    def test_adaptive_neighbor_streams(self, small_graph):
        cfg = stream_config(adaptive_neighbor=True, eval_negatives=5)
        trainer, result, losses = self._run(cfg, small_graph, warmup=300,
                                            chunk=150, window=200)
        assert trainer.sampler is not None
        assert len(losses) > 0
        # Determinism holds with the trainable sampler in the loop too.
        _, r2, l2 = self._run(stream_config(adaptive_neighbor=True,
                                            eval_negatives=5),
                              small_graph, warmup=300, chunk=150, window=200)
        assert result.mrr_over_time == r2.mrr_over_time and losses == l2


class TestConfigValidationMessages:
    def test_unknown_engine_message_is_actionable(self):
        with pytest.raises(ValueError, match="choose 'sync'"):
            TaserConfig(batch_engine="warp")

    def test_prefetch_depth_message_names_the_value(self):
        with pytest.raises(ValueError, match="got 0"):
            TaserConfig(prefetch_depth=0)


class TestEmptyStreamResult:
    def test_empty_run_serialises_to_strict_json(self, small_graph):
        """Zero-chunk runs must produce finite numbers / None, never the
        non-standard NaN/Infinity JSON tokens."""
        import json

        warm, _ = split_warmup(small_graph, warmup_events=small_graph.num_edges)
        trainer = StreamingTrainer(warm, stream_config(), window_events=200)
        payload = trainer.result().as_dict()
        assert payload["events_per_second"] == 0.0
        assert payload["batches_per_second"] == 0.0
        assert payload["prequential_mrr"] is None
        json.loads(json.dumps(payload, allow_nan=False))  # strict round-trip


class TestStreamChunkDirectUse:
    def test_manual_chunk_steps(self, small_graph):
        """EventChunk is a plain container: hand-built chunks stream too."""
        warm = small_graph.select_events(np.arange(400))
        trainer = StreamingTrainer(warm, stream_config(), window_events=200,
                                   prequential_max_events=20)
        lo, hi = 400, 500
        chunk = EventChunk(src=small_graph.src[lo:hi], dst=small_graph.dst[lo:hi],
                           ts=small_graph.ts[lo:hi],
                           edge_feat=small_graph.edge_feat[lo:hi], index=0)
        stats = trainer.step(chunk)
        assert stats.total_events == 500
        assert stats.batches_trained > 0
