"""Tests for the TGNN backbones (TGAT, GraphMixer) and the edge predictor."""

import numpy as np
import pytest

from repro.core import MiniBatchGenerator
from repro.device import FeatureStore
from repro.graph import build_tcsr
from repro.models import (TGAT, GraphMixer, EdgePredictor, make_backbone, MiniBatch,
                          HopData)
from repro.sampling import make_finder
from repro.tensor import Tensor

RNG = np.random.default_rng(0)


def build_minibatch(graph, tcsr, num_layers, n, batch=40, policy="uniform", seed=0):
    finder = make_finder("gpu", tcsr, policy=policy, seed=seed)
    store = FeatureStore(graph)
    gen = MiniBatchGenerator(finder, store, num_layers, n, n)
    rng = np.random.default_rng(seed)
    idx = rng.integers(graph.num_edges // 2, graph.num_edges, batch)
    roots = np.concatenate([graph.src[idx], graph.dst[idx]])
    times = np.concatenate([graph.ts[idx], graph.ts[idx]])
    return gen.build(roots, times, train=False)


class TestEdgePredictor:
    def test_logit_shape(self):
        pred = EdgePredictor(16, rng=RNG)
        out = pred(Tensor(RNG.standard_normal((7, 16))),
                   Tensor(RNG.standard_normal((7, 16))))
        assert out.shape == (7,)

    def test_gradients_reach_both_sides(self):
        pred = EdgePredictor(8, rng=RNG)
        a = Tensor(RNG.standard_normal((3, 8)), requires_grad=True)
        b = Tensor(RNG.standard_normal((3, 8)), requires_grad=True)
        pred(a, b).sum().backward()
        assert a.grad is not None and b.grad is not None


class TestTGAT:
    def test_embedding_shape(self, small_graph, small_tcsr):
        mb = build_minibatch(small_graph, small_tcsr, num_layers=2, n=5)
        model = TGAT(small_graph.node_dim, small_graph.edge_dim, hidden_dim=16,
                     time_dim=8, rng=RNG)
        emb = model.embed(mb)
        assert emb.shape == (mb.batch_size, 16)

    def test_requires_enough_hops(self, small_graph, small_tcsr):
        mb = build_minibatch(small_graph, small_tcsr, num_layers=1, n=5)
        model = TGAT(small_graph.node_dim, small_graph.edge_dim, hidden_dim=8,
                     time_dim=4, rng=RNG)
        with pytest.raises(ValueError):
            model.embed(mb)

    def test_backward_reaches_all_parameters(self, small_graph, small_tcsr):
        mb = build_minibatch(small_graph, small_tcsr, num_layers=2, n=4)
        model = TGAT(small_graph.node_dim, small_graph.edge_dim, hidden_dim=8,
                     time_dim=4, num_heads=1, dropout=0.0, rng=RNG)
        model.embed(mb).sum().backward()
        with_grad = sum(1 for p in model.parameters() if p.grad is not None
                        and np.any(p.grad != 0))
        assert with_grad >= 0.8 * len(model.parameters())

    def test_last_layer_attention_exposed(self, small_graph, small_tcsr):
        mb = build_minibatch(small_graph, small_tcsr, num_layers=2, n=5)
        model = TGAT(small_graph.node_dim, small_graph.edge_dim, hidden_dim=8,
                     time_dim=4, rng=RNG)
        model.embed(mb)
        attn = model.last_layer_attention()
        assert attn.shape == (mb.batch_size, 5)
        valid = mb.hops[0].batch.mask
        assert np.allclose(attn.sum(axis=1), valid.any(axis=1).astype(float), atol=1e-6)

    def test_node_features_used_when_present(self, featured_graph):
        tcsr = build_tcsr(featured_graph)
        mb = build_minibatch(featured_graph, tcsr, num_layers=2, n=4)
        model = TGAT(featured_graph.node_dim, featured_graph.edge_dim, hidden_dim=8,
                     time_dim=4, rng=RNG)
        assert model.node_proj is not None
        emb = model.embed(mb)
        assert np.isfinite(emb.data).all()

    def test_deterministic_in_eval_mode(self, small_graph, small_tcsr):
        mb = build_minibatch(small_graph, small_tcsr, num_layers=2, n=5)
        model = TGAT(small_graph.node_dim, small_graph.edge_dim, hidden_dim=8,
                     time_dim=4, rng=np.random.default_rng(1))
        model.eval()
        a = model.embed(mb).data
        b = model.embed(mb).data
        assert np.allclose(a, b)


class TestGraphMixer:
    def test_embedding_shape(self, small_graph, small_tcsr):
        mb = build_minibatch(small_graph, small_tcsr, num_layers=1, n=6, policy="recent")
        model = GraphMixer(small_graph.node_dim, small_graph.edge_dim, hidden_dim=16,
                           time_dim=8, num_neighbors=6, rng=RNG)
        emb = model.embed(mb)
        assert emb.shape == (mb.batch_size, 16)

    def test_budget_mismatch_raises(self, small_graph, small_tcsr):
        mb = build_minibatch(small_graph, small_tcsr, num_layers=1, n=4, policy="recent")
        model = GraphMixer(small_graph.node_dim, small_graph.edge_dim, hidden_dim=8,
                           time_dim=4, num_neighbors=6, rng=RNG)
        with pytest.raises(ValueError):
            model.embed(mb)

    def test_backward(self, small_graph, small_tcsr):
        mb = build_minibatch(small_graph, small_tcsr, num_layers=1, n=5, policy="recent")
        model = GraphMixer(small_graph.node_dim, small_graph.edge_dim, hidden_dim=8,
                           time_dim=4, num_neighbors=5, dropout=0.0, rng=RNG)
        model.embed(mb).sum().backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert len(grads) > 0

    def test_gate_sensitivity_available_after_backward(self, small_graph, small_tcsr):
        mb = build_minibatch(small_graph, small_tcsr, num_layers=1, n=5, policy="recent")
        hop = mb.hops[0]
        hop.make_gate()
        model = GraphMixer(small_graph.node_dim, small_graph.edge_dim, hidden_dim=8,
                           time_dim=4, num_neighbors=5, dropout=0.0, rng=RNG)
        model.embed(mb).sum().backward()
        sens = hop.gate_sensitivity()
        assert sens is not None and sens.shape == hop.batch.mask.shape
        assert np.any(sens[hop.batch.mask] != 0)


class TestFactory:
    def test_make_backbone(self):
        assert isinstance(make_backbone("tgat", 0, 8), TGAT)
        assert isinstance(make_backbone("graphmixer", 0, 8), GraphMixer)
        with pytest.raises(ValueError):
            make_backbone("tgn", 0, 8)


class TestMiniBatchContainer:
    def test_check_invariants(self, small_graph, small_tcsr):
        mb = build_minibatch(small_graph, small_tcsr, num_layers=2, n=5)
        mb.check_invariants()
        assert mb.num_hops == 2

    def test_invariant_violation_detected(self, small_graph, small_tcsr):
        mb = build_minibatch(small_graph, small_tcsr, num_layers=2, n=5)
        # corrupt the cascade: drop half the rows of hop 2
        bad = mb.hops[1].batch
        mb.hops[1] = HopData(batch=bad.select(np.zeros((bad.batch_size, 2), dtype=int)))
        mb.hops[1].batch.root_nodes = bad.root_nodes[:10]
        with pytest.raises(AssertionError):
            mb.check_invariants()
