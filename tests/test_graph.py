"""Tests for the temporal graph container, T-CSR, splits and noise utilities."""

import numpy as np
import pytest

from repro.graph import (TemporalGraph, build_tcsr, chronological_split, CTDGConfig,
                         generate_ctdg, measure_noise, inject_random_edges,
                         perturb_edge_features, drop_events, load_dataset,
                         dataset_config, dataset_table, DATASET_NAMES)


def tiny_graph():
    return TemporalGraph(
        src=np.array([0, 1, 0, 2, 1]),
        dst=np.array([1, 2, 2, 0, 0]),
        ts=np.array([1.0, 2.0, 3.0, 4.0, 5.0]),
        num_nodes=3,
        edge_feat=np.arange(10, dtype=np.float32).reshape(5, 2),
    )


class TestTemporalGraph:
    def test_basic_properties(self):
        g = tiny_graph()
        assert g.num_edges == 5
        assert g.edge_dim == 2 and g.node_dim == 0
        assert g.is_chronological
        assert len(g) == 5

    def test_validation_shape_mismatch(self):
        with pytest.raises(ValueError):
            TemporalGraph(src=np.array([0]), dst=np.array([1, 2]),
                          ts=np.array([0.0]), num_nodes=3)

    def test_validation_node_id_range(self):
        with pytest.raises(ValueError):
            TemporalGraph(src=np.array([5]), dst=np.array([0]),
                          ts=np.array([0.0]), num_nodes=3)

    def test_validation_edge_feat_rows(self):
        with pytest.raises(ValueError):
            TemporalGraph(src=np.array([0]), dst=np.array([1]), ts=np.array([0.0]),
                          num_nodes=2, edge_feat=np.zeros((2, 3), dtype=np.float32))

    def test_sort_by_time(self):
        g = TemporalGraph(src=np.array([0, 1]), dst=np.array([1, 0]),
                          ts=np.array([5.0, 1.0]), num_nodes=2)
        assert not g.is_chronological
        s = g.sort_by_time()
        assert s.is_chronological
        assert s.src[0] == 1

    def test_time_slice_and_latest(self):
        g = tiny_graph()
        assert g.time_slice(2.0, 4.0).num_edges == 2
        assert g.latest_events(2).num_edges == 2
        assert g.latest_events(100).num_edges == 5

    def test_select_events_keeps_features(self):
        g = tiny_graph()
        sub = g.select_events(np.array([0, 2]))
        assert sub.num_edges == 2
        assert np.allclose(sub.edge_feat, g.edge_feat[[0, 2]])

    def test_degree_and_repeat(self):
        g = tiny_graph()
        deg = g.degree_counts()
        assert deg.sum() == 2 * g.num_edges
        # (0,2) appears once, (0,1)... no repeated (src,dst) pairs here.
        assert g.repeat_ratio() == 0.0

    def test_statistics_keys(self):
        stats = tiny_graph().statistics()
        assert {"num_nodes", "num_edges", "edge_dim", "node_dim",
                "repeat_ratio", "max_degree"} <= set(stats)


class TestTCSR:
    def test_invariants(self, small_tcsr):
        small_tcsr.check_invariants()

    def test_bidirectional_entry_count(self, small_graph, small_tcsr):
        assert small_tcsr.num_entries == 2 * small_graph.num_edges

    def test_neighborhood_views_sorted(self, small_tcsr):
        for node in range(0, small_tcsr.num_nodes, 7):
            _, _, ts = small_tcsr.neighborhood(node)
            assert np.all(np.diff(ts) >= 0)

    def test_pivot_counts_past_only(self, small_graph, small_tcsr):
        g, tcsr = small_graph, small_tcsr
        v = int(g.src[100])
        t = float(g.ts[100])
        pivot = tcsr.pivot(v, t)
        _, _, ts = tcsr.neighborhood(v)
        lo = tcsr.indptr[v]
        local = pivot - lo
        assert np.all(ts[:local] < t)
        assert local == ts.size or ts[local] >= t

    def test_pivots_batch_matches_scalar(self, small_graph, small_tcsr):
        nodes = small_graph.src[:50]
        times = small_graph.ts[:50]
        batch = small_tcsr.pivots(nodes, times)
        scalar = np.array([small_tcsr.pivot(int(v), float(t))
                           for v, t in zip(nodes, times)])
        assert np.array_equal(batch, scalar)

    def test_no_reverse_option(self, small_graph):
        tcsr = build_tcsr(small_graph, add_reverse=False)
        tcsr.check_invariants()
        assert tcsr.num_entries == small_graph.num_edges

    def test_eid_maps_to_original_edge(self, small_graph, small_tcsr):
        nbr, eid, ts = small_tcsr.neighborhood(int(small_graph.src[0]))
        assert np.all((small_graph.ts[eid] == ts))


class TestSplits:
    def test_ratios(self, small_graph):
        split = chronological_split(small_graph, 0.6, 0.2)
        split.check_invariants()
        total = split.num_train + split.num_val + split.num_test
        assert total == small_graph.num_edges
        assert abs(split.num_train / total - 0.6) < 0.02

    def test_chronological_ordering(self, small_split):
        g = small_split.graph
        assert g.ts[small_split.train_idx].max() <= g.ts[small_split.test_idx].min()

    def test_max_events_cap(self, small_graph):
        split = chronological_split(small_graph, 0.6, 0.2, max_events=500)
        assert split.num_train + split.num_val + split.num_test == 500
        # history before the cap stays in the graph
        assert split.graph.num_edges == small_graph.num_edges

    def test_invalid_ratios(self, small_graph):
        with pytest.raises(ValueError):
            chronological_split(small_graph, 0.8, 0.3)
        with pytest.raises(ValueError):
            chronological_split(small_graph, 0.0, 0.2)


class TestGenerators:
    def test_determinism(self):
        cfg = CTDGConfig(num_src=20, num_dst=10, num_events=300, seed=5)
        g1, g2 = generate_ctdg(cfg), generate_ctdg(cfg)
        assert np.array_equal(g1.src, g2.src)
        assert np.array_equal(g1.ts, g2.ts)
        assert np.allclose(g1.edge_feat, g2.edge_feat)

    def test_chronological_output(self, small_graph):
        assert small_graph.is_chronological

    def test_bipartite_partition_respected(self, small_graph):
        n_src = small_graph.meta["num_src"]
        assert small_graph.src.max() < n_src
        assert small_graph.dst.min() >= n_src

    def test_noise_fraction_close_to_config(self):
        cfg = CTDGConfig(num_src=50, num_dst=30, num_events=4000, noise_prob=0.3,
                         repeat_prob=0.0, seed=2)
        g = generate_ctdg(cfg)
        frac = measure_noise(g).noise_edge_fraction
        assert abs(frac - 0.3) < 0.05

    def test_drift_creates_stale_edges(self):
        cfg = CTDGConfig(num_src=50, num_dst=30, num_events=3000, drift_fraction=1.0,
                         noise_prob=0.0, repeat_prob=0.5, seed=3)
        report = measure_noise(generate_ctdg(cfg))
        assert report.stale_edge_fraction > 0.05

    def test_repeat_prob_increases_repeat_ratio(self):
        low = generate_ctdg(CTDGConfig(num_src=40, num_dst=40, num_events=2000,
                                       repeat_prob=0.0, seed=4)).repeat_ratio()
        high = generate_ctdg(CTDGConfig(num_src=40, num_dst=40, num_events=2000,
                                        repeat_prob=0.7, seed=4)).repeat_ratio()
        assert high > low

    def test_unipartite_no_node_split(self, featured_graph):
        assert not featured_graph.meta["bipartite"]
        assert featured_graph.node_feat is not None
        assert featured_graph.node_feat.shape == (featured_graph.num_nodes,
                                                  featured_graph.node_dim)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CTDGConfig(num_src=1)
        with pytest.raises(ValueError):
            CTDGConfig(noise_prob=2.0)

    def test_activity_skew_gini(self):
        flat = generate_ctdg(CTDGConfig(num_src=60, num_dst=30, num_events=3000,
                                        activity_skew=0.1, seed=5))
        skewed = generate_ctdg(CTDGConfig(num_src=60, num_dst=30, num_events=3000,
                                          activity_skew=1.8, seed=5))
        assert measure_noise(skewed).degree_gini > measure_noise(flat).degree_gini


class TestDatasets:
    def test_all_presets_load(self):
        for name in DATASET_NAMES:
            cfg = dataset_config(name, scale=0.05)
            assert cfg.name == name
        g = load_dataset("wikipedia", scale=0.05)
        assert g.num_edges > 0

    def test_table2_profile(self):
        table = dataset_table(scale=0.05)
        assert set(table) == set(DATASET_NAMES)
        # Feature-presence profile matches the paper's Table II.
        assert table["wikipedia"]["node_dim"] == 0 and table["wikipedia"]["edge_dim"] > 0
        assert table["flights"]["edge_dim"] == 0 and table["flights"]["node_dim"] > 0
        assert table["gdelt"]["edge_dim"] > 0 and table["gdelt"]["node_dim"] > 0
        # Relative sizes increase along the paper's ordering.
        assert table["wikipedia"]["num_edges"] < table["reddit"]["num_edges"] \
            < table["gdelt"]["num_edges"]

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            dataset_config("imaginary")
        with pytest.raises(ValueError):
            dataset_config("wikipedia", scale=0)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_scale_multiplies_event_counts_linearly(self, name):
        base = dataset_config(name, scale=1.0).num_events
        for scale in (0.1, 0.5, 2.0):
            cfg = dataset_config(name, scale=scale)
            assert cfg.num_events == int(base * scale)
            g = generate_ctdg(cfg)
            assert g.num_edges == cfg.num_events

    @pytest.mark.parametrize("scale", [0.05, 0.5, 2.0])
    def test_scaled_presets_split_validly(self, scale):
        for name in ("wikipedia", "flights"):
            g = load_dataset(name, scale=scale, seed=1)
            split = chronological_split(g)
            split.check_invariants()
            assert split.num_train + split.num_val + split.num_test == g.num_edges
            assert split.num_train > 0 and split.num_test > 0

    def test_scale_grows_node_counts_sublinearly(self):
        small = load_dataset("wikipedia", scale=0.25, seed=0)
        large = load_dataset("wikipedia", scale=4.0, seed=0)
        # Nodes follow sqrt(scale): a 16x event gap is a ~4x node gap, so
        # density (events per node) grows with scale, as in real graphs.
        assert large.num_nodes < 16 * small.num_nodes
        assert large.num_edges / large.num_nodes > small.num_edges / small.num_nodes


class TestNoiseInjection:
    def test_inject_random_edges(self, small_graph):
        noisy = inject_random_edges(small_graph, 0.5, seed=1)
        assert noisy.num_edges == int(round(1.5 * small_graph.num_edges))
        assert noisy.is_chronological
        assert noisy.edge_feat.shape[0] == noisy.num_edges
        # the injected events are flagged
        assert noisy.meta["event_is_noise"].sum() > small_graph.meta["event_is_noise"].sum()

    def test_inject_zero_fraction_is_identity(self, small_graph):
        assert inject_random_edges(small_graph, 0.0) is small_graph

    def test_perturb_edge_features(self, small_graph):
        noisy = perturb_edge_features(small_graph, 1.0, seed=2)
        assert not np.allclose(noisy.edge_feat, small_graph.edge_feat)
        assert np.array_equal(noisy.src, small_graph.src)

    def test_perturb_requires_features(self):
        g = TemporalGraph(src=np.array([0]), dst=np.array([1]), ts=np.array([0.0]),
                          num_nodes=2)
        with pytest.raises(ValueError):
            perturb_edge_features(g, 1.0)

    def test_drop_events(self, small_graph):
        dropped = drop_events(small_graph, 0.3, seed=3)
        assert dropped.num_edges < small_graph.num_edges
        with pytest.raises(ValueError):
            drop_events(small_graph, 1.0)
