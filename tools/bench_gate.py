#!/usr/bin/env python3
"""Benchmark regression gate: compare fresh ``BENCH_*.json`` against baselines.

CI records every benchmark's results as machine-readable ``BENCH_*.json``
artifacts (see ``docs/BENCHMARKS.md``); this tool turns those artifacts into
a *gate* by diffing them against the committed baselines in
``benchmarks/baselines/``:

* **timing regression** — any metric whose key ends in ``_seconds`` may not
  exceed its baseline by more than ``--threshold`` (default 25%); metrics
  ending in ``_per_second`` are throughput and may not *drop* by more than
  the threshold.  Metrics are matched by their dotted path inside the
  ``results`` payload, and baselines below ``--min-seconds`` are skipped as
  timer noise.
* **determinism mismatch** — any payload object carrying a ``hash`` /
  ``replay_hash`` pair (the benchmarks' run-vs-replay digests) must have
  equal values, and when a baseline records the pair the fresh ``hash``
  payload must still be self-consistent.  Contract pairs listed in
  ``REQUIRED_HASH_PAIRS`` (the fig1 ``backend_equivalence`` /
  ``prep_backend_equivalence`` / ``overlap_equivalence`` pairs, the shard
  sweep's ``determinism`` / ``comms_equivalence`` pairs, ...) must also be
  *present* in the fresh artifact — a benchmark that silently stops emitting
  one fails hard.
* **ratio contract** — ``RATIO_CONTRACTS`` caps one timing metric relative
  to another *within the same fresh artifact* (e.g. the fused backend's
  fig1 ``prep_seconds`` may not exceed 1.1x the reference cell's): no
  baseline needed, enforced on the same scale rule as the timing diffs.

Enforcement: *timing* findings **fail** (exit 1) when
``REPRO_BENCH_SCALE >= 0.5`` or ``--strict`` is given, and are **warnings**
(exit 0) at smoke scale, where wall-clock numbers on shared CI runners are
too noisy to block a merge.  Determinism-hash mismatches are enforced at
*every* scale — the digests are computed within one run, so a mismatch is
machine-independent.  Timing baselines are only compared
when the fresh artifact was produced at the same ``scale`` / ``engine_env``
as the baseline.

Refreshing baselines after an intentional performance change::

    REPRO_BENCH_SCALE=0.1 REPRO_BENCH_EPOCHS=1 PYTHONPATH=src \
        python -m pytest benchmarks/bench_table3_runtime.py::test_table3_batch_engine_modes \
        benchmarks/bench_stream_throughput.py benchmarks/bench_shard_scaling.py -q
    python tools/bench_gate.py --update

Exit codes: 0 = clean (or warnings only), 1 = enforced regression,
2 = usage error (e.g. no artifacts found at all).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

THRESHOLD_DEFAULT = 0.25
MIN_SECONDS_DEFAULT = 5e-3

#: equivalence pairs that MUST be present in a fresh artifact.  The generic
#: walker checks any ``hash``/``replay_hash`` pair it *finds*; this map makes
#: silently dropping a contract pair (e.g. a refactor that stops emitting
#: ``prep_backend_equivalence``) a hard failure instead of a silent pass.
REQUIRED_HASH_PAIRS: Dict[str, Tuple[str, ...]] = {
    "BENCH_fig1_breakdown_wikipedia.json": (
        "backend_equivalence", "prep_backend_equivalence",
        "overlap_equivalence"),
    "BENCH_serve_latency.json": ("serve_determinism",),
    "BENCH_precision.json": ("precision_determinism", "fp32_equivalence"),
    "BENCH_shard_scaling.json": ("determinism", "comms_equivalence"),
}

#: intra-artifact timing contracts: ``(artifact, numerator path, denominator
#: path, max ratio)``.  Both paths are dotted locations inside ``results``;
#: the check fires when the numerator exceeds ``max ratio`` times the
#: denominator *within one fresh run*, so it needs no baseline and is immune
#: to machine-to-machine drift.  The fused array backend must never slow the
#: prep phase down — its contract is "same ops, fewer allocations" — so its
#: prep time is capped relative to the reference cell of the same artifact.
RATIO_CONTRACTS: Tuple[Tuple[str, str, str, float], ...] = (
    ("BENCH_fig1_breakdown_wikipedia.json",
     "backends.fused.prep_seconds", "backends.reference.prep_seconds", 1.1),
)


def walk_numeric(payload, prefix: str = "") -> Iterator[Tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every numeric leaf of a payload."""
    if isinstance(payload, dict):
        for key, value in payload.items():
            yield from walk_numeric(value, f"{prefix}.{key}" if prefix else key)
    elif isinstance(payload, list):
        for i, value in enumerate(payload):
            yield from walk_numeric(value, f"{prefix}[{i}]")
    elif isinstance(payload, (int, float)) and not isinstance(payload, bool):
        yield prefix, float(payload)


def walk_hash_pairs(payload, prefix: str = "") -> Iterator[Tuple[str, str, str]]:
    """Yield ``(path, hash, replay_hash)`` for every determinism pair."""
    if isinstance(payload, dict):
        if "hash" in payload and "replay_hash" in payload:
            yield prefix, str(payload["hash"]), str(payload["replay_hash"])
        for key, value in payload.items():
            yield from walk_hash_pairs(value, f"{prefix}.{key}" if prefix else key)
    elif isinstance(payload, list):
        for i, value in enumerate(payload):
            yield from walk_hash_pairs(value, f"{prefix}[{i}]")


class Report:
    """Collects findings and renders the gate verdict."""

    def __init__(self, enforce: bool) -> None:
        self.enforce = enforce
        self.failures: List[str] = []
        self.warnings: List[str] = []
        self.notes: List[str] = []

    def finding(self, message: str) -> None:
        (self.failures if self.enforce else self.warnings).append(message)

    def hard_finding(self, message: str) -> None:
        self.failures.append(message)

    def render(self) -> int:
        for note in self.notes:
            print(f"  note: {note}")
        for warning in self.warnings:
            print(f"  WARN: {warning}")
        for failure in self.failures:
            print(f"  FAIL: {failure}")
        if self.failures:
            print(f"bench-gate: {len(self.failures)} regression(s) — failing")
            return 1
        if self.warnings:
            print(f"bench-gate: {len(self.warnings)} warning(s) at smoke "
                  "scale — not enforced (see --strict)")
        else:
            print("bench-gate: clean")
        return 0


def check_determinism(name: str, current: Dict, report: Report) -> None:
    """Fail on any inconsistent determinism pair in a fresh artifact.

    The pairs are run-vs-replay digests computed *within* one benchmark run,
    so a mismatch is machine-independent evidence of a determinism break —
    it is enforced even at smoke scale, where only timings are warn-only.
    """
    pairs = list(walk_hash_pairs(current.get("results", {})))
    for path, run_hash, replay_hash in pairs:
        if run_hash != replay_hash:
            report.hard_finding(
                f"{name}: determinism hash mismatch at '{path or '<root>'}': "
                f"run={run_hash} replay={replay_hash}")
    seen = {path for path, _, _ in pairs}
    for required in REQUIRED_HASH_PAIRS.get(name, ()):
        if required not in seen:
            report.hard_finding(
                f"{name}: required equivalence pair '{required}' missing "
                "from the artifact — the benchmark must emit it")


def check_ratio_contracts(name: str, current: Dict, report: Report,
                          min_seconds: float) -> None:
    """Enforce the intra-artifact ``RATIO_CONTRACTS`` for one fresh artifact.

    Timing-class findings (warn-only at smoke scale): the two sides come from
    the same run on the same machine, but smoke cells are short enough that
    scheduler jitter can still trip a ratio, so enforcement follows the same
    scale rule as the baseline diffs.  Denominators below ``min_seconds``
    are skipped as timer noise.
    """
    metrics = dict(walk_numeric(current.get("results", {})))
    for artifact, num_path, den_path, max_ratio in RATIO_CONTRACTS:
        if artifact != name:
            continue
        num = metrics.get(num_path)
        den = metrics.get(den_path)
        if num is None or den is None or den < min_seconds:
            continue
        if num > den * max_ratio:
            report.finding(
                f"{name}: '{num_path}' is {num / den:.2f}x "
                f"'{den_path}' ({num:.4f}s vs {den:.4f}s, "
                f"contract <= {max_ratio:.2f}x)")


def compare_file(name: str, current: Dict, baseline: Dict, report: Report,
                 threshold: float, min_seconds: float) -> None:
    """Diff one fresh artifact against its committed baseline."""
    check_determinism(name, current, report)
    check_ratio_contracts(name, current, report, min_seconds)

    comparable = (current.get("scale") == baseline.get("scale")
                  and current.get("engine_env") == baseline.get("engine_env"))
    if not comparable:
        report.notes.append(
            f"{name}: baseline recorded at scale={baseline.get('scale')} "
            f"engine={baseline.get('engine_env')!r}, current at "
            f"scale={current.get('scale')} engine={current.get('engine_env')!r} "
            "— timing comparison skipped")
        return

    base_metrics = dict(walk_numeric(baseline.get("results", {})))
    for path, value in walk_numeric(current.get("results", {})):
        base = base_metrics.get(path)
        if base is None:
            continue
        # Classify by the leaf key: "..._per_second" is throughput (higher is
        # better), anything mentioning "seconds" ("wall_seconds",
        # "epoch_seconds", "wall_seconds_per_epoch", ...) is a timing (lower
        # is better).  The throughput check runs first: "events_per_second"
        # also contains "second".
        leaf = path.split(".")[-1].split("[")[0]
        if "per_second" in leaf:
            if base <= 0:
                continue
            if value < base * (1.0 - threshold):
                report.finding(
                    f"{name}: throughput '{path}' dropped to "
                    f"{value / base:.2f}x of baseline "
                    f"({base:.1f}/s -> {value:.1f}/s)")
        elif "seconds" in leaf:
            if base < min_seconds:
                continue
            if value > base * (1.0 + threshold):
                report.finding(
                    f"{name}: '{path}' slowed down "
                    f"{value / base:.2f}x ({base:.4f}s -> {value:.4f}s, "
                    f"threshold {1.0 + threshold:.2f}x)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate CI on BENCH_*.json vs committed baselines")
    parser.add_argument("--current-dir", type=Path, default=Path("."),
                        help="directory holding freshly emitted BENCH_*.json")
    parser.add_argument("--baseline-dir", type=Path,
                        default=Path("benchmarks/baselines"),
                        help="directory of committed baseline BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=THRESHOLD_DEFAULT,
                        help="allowed fractional slowdown (default 0.25)")
    parser.add_argument("--min-seconds", type=float, default=MIN_SECONDS_DEFAULT,
                        help="ignore timings whose baseline is below this "
                             "(timer noise floor)")
    parser.add_argument("--strict", action="store_true",
                        help="enforce findings regardless of REPRO_BENCH_SCALE")
    parser.add_argument("--update", action="store_true",
                        help="copy current artifacts over the baselines "
                             "instead of comparing")
    args = parser.parse_args(argv)

    current_files = sorted(args.current_dir.glob("BENCH_*.json"))
    if not current_files:
        print(f"bench-gate: no BENCH_*.json found in {args.current_dir} "
              "(run the benchmark suite first)")
        return 2

    if args.update:
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        for path in current_files:
            shutil.copy(path, args.baseline_dir / path.name)
            print(f"bench-gate: baseline refreshed: {path.name}")
        return 0

    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    enforce = args.strict or scale >= 0.5
    report = Report(enforce=enforce)
    print(f"bench-gate: comparing {len(current_files)} artifact(s) against "
          f"{args.baseline_dir} (scale={scale}, "
          f"{'enforcing' if enforce else 'warn-only'})")

    for path in current_files:
        baseline_path = args.baseline_dir / path.name
        current = json.loads(path.read_text())
        if not baseline_path.exists():
            report.notes.append(
                f"{path.name}: no committed baseline — run "
                f"'python tools/bench_gate.py --update' to record one")
            # Still check the fresh artifact's determinism pairs and
            # intra-artifact ratio contracts (neither needs a baseline).
            check_determinism(path.name, current, report)
            check_ratio_contracts(path.name, current, report,
                                  args.min_seconds)
            continue
        baseline = json.loads(baseline_path.read_text())
        compare_file(path.name, current, baseline, report,
                     args.threshold, args.min_seconds)

    return report.render()


if __name__ == "__main__":
    sys.exit(main())
