#!/usr/bin/env python3
"""Markdown link checker for the docs CI job (stdlib only).

Usage::

    python tools/check_links.py README.md docs [more files or dirs ...]

Collects every ``*.md`` file from the given paths and verifies that each
relative link target — inline ``[text](target)`` and reference-style
``[label]: target`` definitions — resolves to an existing file or directory,
relative to the linking file.  External schemes (``http(s)://``, ``mailto:``)
and pure in-page anchors (``#...``) are skipped; a ``target#anchor`` link is
checked for the file part only.

Exits non-zero listing every broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: inline links [text](target); stops at the first unescaped closing paren.
INLINE_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: images ![alt](target) share the target syntax.
IMAGE_LINK = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: reference definitions: [label]: target
REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
#: fenced code blocks are stripped before scanning (``` ... ```).
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)

EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def collect_markdown(paths: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.suffix.lower() == ".md" and path.exists():
            files.append(path)
        else:
            print(f"warning: skipping {raw} (not a markdown file or directory)")
    return files


def extract_targets(text: str) -> List[str]:
    text = CODE_FENCE.sub("", text)
    targets = INLINE_LINK.findall(text) + IMAGE_LINK.findall(text)
    targets += REFERENCE_DEF.findall(text)
    return targets


def check_file(path: Path) -> List[Tuple[str, str]]:
    """Return (target, reason) for every broken link in ``path``."""
    broken = []
    for target in extract_targets(path.read_text(encoding="utf-8")):
        if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        try:
            resolved.relative_to(Path.cwd().resolve())
        except ValueError:
            # Escapes the repository: a GitHub-web-relative URL (e.g. the CI
            # badge's ../../actions/... path) that only resolves on github.com.
            continue
        if not resolved.exists():
            broken.append((target, f"missing: {resolved}"))
    return broken


def main(argv: List[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    files = collect_markdown(argv)
    if not files:
        print("error: no markdown files found")
        return 2
    failures = 0
    for path in files:
        for target, reason in check_file(path):
            print(f"{path}: broken link '{target}' ({reason})")
            failures += 1
    print(f"checked {len(files)} markdown file(s): "
          f"{failures} broken link(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
